//! # dramctrl-obs — zero-perturbation instrumentation
//!
//! Observability substrate for the `dramctrl` simulator family. The design
//! splits instrumentation into two halves:
//!
//! * **Probe points** — the controllers carry a generic [`Probe`] type
//!   parameter and call its hooks at every interesting transition: DRAM
//!   commands, request lifecycle stages, queue-depth changes and power-state
//!   transitions. The default probe, [`NoProbe`], compiles every hook to a
//!   no-op (the parameter is monomorphised, so the disabled path costs
//!   exactly nothing — there is no branch, no indirect call, not even an
//!   argument computation thanks to the [`Probe::ENABLED`] guard).
//! * **Sinks** — concrete probes that turn the event stream into artefacts:
//!   [`ChromeTracer`] renders banks as tracks and commands as duration
//!   slices in the Chrome trace-event JSON format (loadable in
//!   [ui.perfetto.dev](https://ui.perfetto.dev)), and [`EpochRecorder`]
//!   folds the stream into a gem5-style periodic time-series (bandwidth,
//!   bus utilisation, row-hit rate, queue occupancy, power residency) dumped
//!   as CSV or JSON lines.
//!
//! Probes observe and never influence: a hook receives data and returns
//! nothing, so a traced simulation is byte-identical to an untraced one by
//! construction — a property the `dramctrl` differential harness asserts
//! end to end.
//!
//! A third half (the operational one) serves the *service* layer rather
//! than the simulator: [`metrics`] is a dependency-free registry of
//! atomic counters/gauges/histograms with Prometheus text exposition and
//! stable JSON export, and [`log`] is a leveled `key="value"` structured
//! logger for daemon stderr. Both follow the same discipline — recording
//! a metric or a log line never changes a simulation result.
//!
//! # Example
//!
//! ```
//! use dramctrl_obs::{ChromeTracer, CmdEvent, DramCmd, Probe};
//!
//! let mut t = ChromeTracer::new();
//! t.dram_cmd(CmdEvent::act(0, 3, 42, 1_000, 13_500));
//! t.dram_cmd(CmdEvent {
//!     req: Some(7),
//!     ..CmdEvent::data(DramCmd::Rd, 0, 3, 42, 14_500, 6_000, 64, false)
//! });
//! let json = t.to_json();
//! assert!(json.contains("\"ACT\""));
//! dramctrl_obs::json::validate(&json).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod epoch;
pub mod json;
pub mod log;
pub mod metrics;
mod probe;

pub use chrome::ChromeTracer;
pub use epoch::{EpochRecorder, EpochRow};
pub use log::Level;
pub use metrics::{Counter, FloatCounter, Gauge, Histogram, Registry};
pub use probe::{CmdEvent, DramCmd, NoProbe, PowerState, Probe, RasMark};
