//! `prom_check`: validates a Prometheus text-exposition scrape.
//!
//! Used by the CI `metrics-smoke` job to assert that the daemon's
//! `/metrics` output is well-formed (TYPE lines, no duplicate families,
//! parseable samples, complete histograms) and that named counters are
//! present — optionally with a minimum value, which is how the smoke
//! test proves a counter actually advanced during the run.
//!
//! ```text
//! prom_check SCRAPE_FILE [--require NAME[>=MIN]]...
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut requires: Vec<(String, f64)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => {
                let Some(spec) = it.next() else {
                    eprintln!("error: --require needs NAME[>=MIN]");
                    return ExitCode::from(2);
                };
                let (name, min) = match spec.split_once(">=") {
                    Some((n, m)) => match m.parse::<f64>() {
                        Ok(v) => (n.to_string(), v),
                        Err(_) => {
                            eprintln!("error: bad minimum in {spec:?}");
                            return ExitCode::from(2);
                        }
                    },
                    None => (spec.clone(), 0.0),
                };
                requires.push((name, min));
            }
            "--help" | "-h" => {
                eprintln!("usage: prom_check SCRAPE_FILE [--require NAME[>=MIN]]...");
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() => file = Some(a.clone()),
            _ => {
                eprintln!("error: unexpected argument {a:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: prom_check SCRAPE_FILE [--require NAME[>=MIN]]...");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = dramctrl_obs::metrics::validate_exposition(&text) {
        eprintln!("error: invalid exposition: {e}");
        return ExitCode::FAILURE;
    }
    let mut families = 0usize;
    for line in text.lines() {
        if line.starts_with("# TYPE ") {
            families += 1;
        }
    }
    for (name, min) in &requires {
        // Sum the samples of the family (counters may be split by label).
        // Histograms expose no bare-name sample, so `--require h>=N`
        // falls back to the observation count `h_count`.
        let sum_samples = |name: &str| {
            let mut total = 0.0f64;
            let mut seen = false;
            for line in text.lines() {
                if line.starts_with('#') {
                    continue;
                }
                let sample_name = line.split(['{', ' ']).next().unwrap_or("");
                if sample_name != name {
                    continue;
                }
                seen = true;
                if let Some(v) = line.rsplit(' ').next().and_then(|t| t.parse::<f64>().ok()) {
                    total += v;
                }
            }
            (seen, total)
        };
        let (mut seen, mut total) = sum_samples(name);
        if !seen {
            (seen, total) = sum_samples(&format!("{name}_count"));
        }
        if !seen {
            eprintln!("error: required metric {name} not present");
            return ExitCode::FAILURE;
        }
        if total < *min {
            eprintln!("error: metric {name} = {total}, wanted >= {min}");
            return ExitCode::FAILURE;
        }
        println!("ok: {name} = {total} (>= {min})");
    }
    println!("ok: {families} families, exposition valid");
    ExitCode::SUCCESS
}
