//! A dependency-free metrics registry with Prometheus text exposition.
//!
//! The simulator crates must stay free of external dependencies, so this
//! module provides the minimal operational-metrics vocabulary in plain
//! `std`: monotonically increasing [`Counter`]s, settable [`Gauge`]s, and
//! fixed-bucket [`Histogram`]s, all backed by atomics so hot paths record
//! without taking a lock. A [`Registry`] owns the families and renders
//! them in two stable formats:
//!
//! * [`Registry::render_prometheus`] — the Prometheus text exposition
//!   format (`# HELP`/`# TYPE` headers, `_bucket{le=...}`/`_sum`/`_count`
//!   histogram series), suitable for a `/metrics` endpoint.
//! * [`Registry::render_json`] — a stable line-free JSON export for
//!   programmatic consumers.
//!
//! Handles are cheap `Arc` clones: instrumented code keeps its handle and
//! touches one atomic per event; the registry lock is only taken at
//! registration and render time. Observing a metric never influences the
//! simulation — the same zero-perturbation discipline as the probe layer.
//!
//! ```
//! use dramctrl_obs::metrics::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
//! hits.inc();
//! let text = reg.render_prometheus();
//! assert!(text.contains("cache_hits_total{tier=\"l1\"} 1"));
//! dramctrl_obs::metrics::validate_exposition(&text).unwrap();
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
///
/// Cloning shares the underlying atomic; all clones observe the same
/// value. Counters only go up — rates and deltas are the scraper's job.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, connections,
/// rates). Stored as `f64` bits in an atomic so readers never tear.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrement) with a compare-and-swap loop.
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A float-valued counter for accumulated durations (e.g. total busy
/// seconds). Prometheus counters may be floats; this one only adds.
#[derive(Debug, Clone, Default)]
pub struct FloatCounter(Gauge);

impl FloatCounter {
    /// Adds `d` seconds (or whatever the unit is). `d` must be >= 0.
    pub fn add(&self, d: f64) {
        self.0.add(d.max(0.0));
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistInner {
    /// Upper bounds of the finite buckets, ascending. An implicit +Inf
    /// bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cumulative-by-render (stored per-bucket) counts.
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations in nanounits (fixed point: 1e-9), so the sum
    /// is exact for latencies and survives atomic addition.
    sum_nano: AtomicU64,
}

/// A fixed-bucket histogram (latencies, batch sizes).
///
/// Buckets are chosen at registration; observation is two relaxed atomic
/// adds plus a linear scan over the (small) bound list.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let mut b: Vec<f64> = bounds.to_vec();
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistInner {
            bounds: b,
            counts,
            count: AtomicU64::new(0),
            sum_nano: AtomicU64::new(0),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.counts[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let nanos = (v.max(0.0) * 1e9).round() as u64;
        self.0.sum_nano.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.0.sum_nano.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// Default latency buckets (seconds): 50µs .. 10s, roughly 1-2.5-5 per
/// decade — wide enough for fsync latencies on anything from tmpfs to a
/// loaded spinning disk.
pub const LATENCY_BUCKETS: &[f64] = &[
    50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5, 10.0,
];

/// Default size buckets (counts): powers of two 1 .. 4096, for batch
/// sizes and queue depths.
pub const SIZE_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    FloatCounter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_str(self) -> &'static str {
        match self {
            Kind::Counter | Kind::FloatCounter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Child {
    Counter(Counter),
    FloatCounter(FloatCounter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Children keyed by their rendered label string (`{k="v",...}` or
    /// empty), kept sorted for stable output.
    children: BTreeMap<String, Child>,
}

/// The metric registry: a named, labelled family store with stable
/// Prometheus and JSON rendering. Cheap to clone (shared `Arc`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

fn label_str(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let mut s = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    s.push('}');
    s
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` the way Prometheus expects: `+Inf` for infinity,
/// integral values without a trailing `.0` kept as-is via `{}`.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn child(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Child {
        let ls = label_str(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} re-registered with a different kind"
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.into(),
                    help: help.into(),
                    kind,
                    children: BTreeMap::new(),
                });
                fams.last_mut().unwrap()
            }
        };
        fam.children
            .entry(ls)
            .or_insert_with(|| match kind {
                Kind::Counter => Child::Counter(Counter::default()),
                Kind::FloatCounter => Child::FloatCounter(FloatCounter::default()),
                Kind::Gauge => Child::Gauge(Gauge::default()),
                Kind::Histogram => unreachable!("histograms use histogram()"),
            })
            .clone()
    }

    /// Finds or creates the counter `name{labels}`. Repeated calls with
    /// the same name and labels return handles to the same atomic.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.child(name, help, Kind::Counter, labels) {
            Child::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Finds or creates a float-valued counter (for accumulated seconds).
    pub fn fcounter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatCounter {
        match self.child(name, help, Kind::FloatCounter, labels) {
            Child::FloatCounter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Finds or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, Kind::Gauge, labels) {
            Child::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Finds or creates the histogram `name{labels}` with the given
    /// finite bucket bounds (an implicit `+Inf` bucket is appended).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        let ls = label_str(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = match fams.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == Kind::Histogram,
                    "metric {name} re-registered with a different kind"
                );
                f
            }
            None => {
                fams.push(Family {
                    name: name.into(),
                    help: help.into(),
                    kind: Kind::Histogram,
                    children: BTreeMap::new(),
                });
                fams.last_mut().unwrap()
            }
        };
        match fam
            .children
            .entry(ls)
            .or_insert_with(|| Child::Histogram(Histogram::new(bounds)))
        {
            Child::Histogram(h) => h.clone(),
            _ => unreachable!(),
        }
    }

    /// Renders every family in the Prometheus text exposition format,
    /// families sorted by name and children by label string, so output
    /// is stable across renders and registration orders.
    pub fn render_prometheus(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut order: Vec<usize> = (0..fams.len()).collect();
        order.sort_by(|&a, &b| fams[a].name.cmp(&fams[b].name));
        let mut out = String::new();
        for &i in &order {
            let f = &fams[i];
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.type_str());
            for (ls, child) in &f.children {
                match child {
                    Child::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", f.name, ls, c.get());
                    }
                    Child::FloatCounter(c) => {
                        let _ = writeln!(out, "{}{} {}", f.name, ls, fmt_f64(c.get()));
                    }
                    Child::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", f.name, ls, fmt_f64(g.get()));
                    }
                    Child::Histogram(h) => {
                        let inner = &h.0;
                        let mut cum = 0u64;
                        for (bi, bound) in inner
                            .bounds
                            .iter()
                            .copied()
                            .chain(std::iter::once(f64::INFINITY))
                            .enumerate()
                        {
                            cum += inner.counts[bi].load(Ordering::Relaxed);
                            let le = fmt_f64(bound);
                            let lbl = if ls.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &ls[..ls.len() - 1])
                            };
                            let _ = writeln!(out, "{}_bucket{} {}", f.name, lbl, cum);
                        }
                        let _ = writeln!(out, "{}_sum{} {}", f.name, ls, fmt_f64(h.sum()));
                        let _ = writeln!(out, "{}_count{} {}", f.name, ls, h.count());
                    }
                }
            }
        }
        out
    }

    /// Renders every family as one stable JSON object:
    /// `{"families":[{"name":...,"type":...,"samples":[{"labels":...,"value":...}]}]}`.
    /// Histograms export count, sum and per-bucket cumulative counts.
    pub fn render_json(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut order: Vec<usize> = (0..fams.len()).collect();
        order.sort_by(|&a, &b| fams[a].name.cmp(&fams[b].name));
        let mut out = String::from("{\"families\":[");
        for (oi, &i) in order.iter().enumerate() {
            let f = &fams[i];
            if oi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"type\":\"{}\",\"samples\":[",
                f.name,
                f.kind.type_str()
            );
            for (ci, (ls, child)) in f.children.iter().enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"labels\":\"{}\",", escape_label(ls));
                match child {
                    Child::Counter(c) => {
                        let _ = write!(out, "\"value\":{}}}", c.get());
                    }
                    Child::FloatCounter(c) => {
                        let _ = write!(out, "\"value\":{}}}", json_f64(c.get()));
                    }
                    Child::Gauge(g) => {
                        let _ = write!(out, "\"value\":{}}}", json_f64(g.get()));
                    }
                    Child::Histogram(h) => {
                        let inner = &h.0;
                        let _ = write!(
                            out,
                            "\"count\":{},\"sum\":{},\"buckets\":[",
                            h.count(),
                            json_f64(h.sum())
                        );
                        let mut cum = 0u64;
                        for (bi, bound) in inner
                            .bounds
                            .iter()
                            .copied()
                            .chain(std::iter::once(f64::INFINITY))
                            .enumerate()
                        {
                            cum += inner.counts[bi].load(Ordering::Relaxed);
                            if bi > 0 {
                                out.push(',');
                            }
                            let le = if bound == f64::INFINITY {
                                "\"+Inf\"".to_string()
                            } else {
                                json_f64(bound)
                            };
                            let _ = write!(out, "{{\"le\":{le},\"count\":{cum}}}");
                        }
                        out.push_str("]}");
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Validates Prometheus text exposition: every family has exactly one
/// `# TYPE` line appearing before its samples, no duplicate families,
/// every sample line parses (`name{labels} value`), and every histogram
/// carries a `+Inf` bucket plus `_sum`/`_count` series.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut hist_has_inf: BTreeMap<String, bool> = BTreeMap::new();
    let mut hist_has_sum: BTreeMap<String, bool> = BTreeMap::new();
    let mut hist_has_count: BTreeMap<String, bool> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").to_string();
            if name.is_empty() || kind.is_empty() {
                return Err(format!("line {ln}: malformed TYPE line: {line}"));
            }
            if typed.insert(name.clone(), kind.clone()).is_some() {
                return Err(format!("line {ln}: duplicate family {name}"));
            }
            if kind == "histogram" {
                hist_has_inf.insert(name.clone(), false);
                hist_has_sum.insert(name.clone(), false);
                hist_has_count.insert(name, false);
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {ln}: no name terminator: {line}"))?;
        let name = &line[..name_end];
        let rest = &line[name_end..];
        let value = if let Some(stripped) = rest.strip_prefix('{') {
            let close = stripped
                .find('}')
                .ok_or_else(|| format!("line {ln}: unclosed labels: {line}"))?;
            if stripped.contains("+Inf") {
                if let Some(base) = name.strip_suffix("_bucket") {
                    if let Some(v) = hist_has_inf.get_mut(base) {
                        *v = true;
                    }
                }
            }
            stripped[close + 1..].trim()
        } else {
            rest.trim()
        };
        if value.is_empty() || value.parse::<f64>().is_err() && value != "+Inf" && value != "NaN" {
            return Err(format!("line {ln}: bad sample value {value:?}: {line}"));
        }
        // Resolve the family this sample belongs to: exact, or a
        // histogram series suffix.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                name.strip_suffix(suf)
                    .filter(|b| typed.get(*b).map(|k| k == "histogram").unwrap_or(false))
            })
            .unwrap_or(name);
        if !typed.contains_key(base) {
            return Err(format!("line {ln}: sample {name} has no TYPE line"));
        }
        if typed.get(base).map(|k| k == "histogram").unwrap_or(false) {
            if name.ends_with("_sum") {
                hist_has_sum.insert(base.to_string(), true);
            }
            if name.ends_with("_count") {
                hist_has_count.insert(base.to_string(), true);
            }
        }
    }
    for (name, seen) in &hist_has_inf {
        if !*seen {
            return Err(format!("histogram {name} has no +Inf bucket"));
        }
    }
    for (name, seen) in &hist_has_sum {
        if !*seen {
            return Err(format!("histogram {name} has no _sum series"));
        }
    }
    for (name, seen) in &hist_has_count {
        if !*seen {
            return Err(format!("histogram {name} has no _count series"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("reqs_total", "Requests.", &[("tenant", "a")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels returns the same atomic.
        let c2 = reg.counter("reqs_total", "Requests.", &[("tenant", "a")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("depth", "Queue depth.", &[]);
        g.set(3.0);
        g.dec();
        assert_eq!(g.get(), 2.0);
        let text = reg.render_prometheus();
        assert!(text.contains("reqs_total{tenant=\"a\"} 6"), "{text}");
        assert!(text.contains("depth 2"), "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn histogram_buckets_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("lat_seconds", "Latency.", &[], &[0.001, 0.01, 0.1]);
        h.observe(0.0005);
        h.observe(0.005);
        h.observe(0.5);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 0.5055).abs() < 1e-9);
        let text = reg.render_prometheus();
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.001\"} 1"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_bucket{le=\"0.01\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_seconds_count 3"), "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn labelled_histogram_renders_le_inside_braces() {
        let reg = Registry::new();
        let h = reg.histogram("x_seconds", "X.", &[("op", "fsync")], &[0.5]);
        h.observe(0.1);
        let text = reg.render_prometheus();
        assert!(
            text.contains("x_seconds_bucket{op=\"fsync\",le=\"0.5\"} 1"),
            "{text}"
        );
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let reg = Registry::new();
        reg.counter("z_total", "Z.", &[]);
        reg.counter("a_total", "A.", &[("t", "b")]);
        reg.counter("a_total", "A.", &[("t", "a")]);
        let t1 = reg.render_prometheus();
        let t2 = reg.render_prometheus();
        assert_eq!(t1, t2);
        let a = t1.find("# TYPE a_total").unwrap();
        let z = t1.find("# TYPE z_total").unwrap();
        assert!(a < z);
        let ta = t1.find("a_total{t=\"a\"}").unwrap();
        let tb = t1.find("a_total{t=\"b\"}").unwrap();
        assert!(ta < tb);
    }

    #[test]
    fn json_export_is_valid() {
        let reg = Registry::new();
        reg.counter("c_total", "C.", &[]).add(7);
        reg.gauge("g", "G.", &[("k", "v")]).set(1.5);
        reg.histogram("h_seconds", "H.", &[], &[1.0]).observe(0.5);
        let json = reg.render_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"name\":\"c_total\""), "{json}");
        assert!(json.contains("\"le\":\"+Inf\""), "{json}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("no_type_line 3\n").is_err());
        assert!(validate_exposition("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        assert!(validate_exposition("# TYPE a counter\na pancake\n").is_err());
        // Histogram without +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(bad).is_err());
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("e_total", "E.", &[("p", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("e_total{p=\"a\\\"b\\\\c\"} 1"), "{text}");
        validate_exposition(&text).unwrap();
    }
}
