//! Chrome trace-event / Perfetto JSON exporter.
//!
//! The output is the classic Chrome trace-event JSON format
//! (`{"traceEvents":[...]}`), which [ui.perfetto.dev](https://ui.perfetto.dev)
//! and `chrome://tracing` both load directly. The mapping:
//!
//! * **process** = memory channel (`pid` is the channel index),
//! * **thread 0** = the request-lifecycle track: each request is a nestable
//!   async span from acceptance to response delivery,
//! * one **thread per bank** (sorted by `(rank, bank)`): ACT/PRE/RD/WR
//!   duration slices, with row / bytes / row-hit annotations in `args`,
//! * one **thread per rank**: REF slices plus power-down / self-refresh
//!   residency slices (active time is the gap between them).
//!
//! Timestamps are microseconds (the format's unit); ticks are picoseconds,
//! so `ts = ticks / 1e6` with sub-microsecond precision preserved in the
//! fractional part.

use crate::probe::{CmdEvent, DramCmd, PowerState, Probe, RasMark};
use dramctrl_kernel::Tick;
use std::fmt::Write as _;

/// Records the probe event stream and serialises it as Chrome trace-event
/// JSON. See the [module docs](self) for the track layout.
///
/// One tracer observes one controller (one channel); for multi-channel
/// systems give each controller its own tracer (constructed with
/// [`ChromeTracer::for_channel`]) and merge them with
/// [`ChromeTracer::combined_json`].
#[derive(Debug, Clone, Default)]
pub struct ChromeTracer {
    channel: u32,
    cmds: Vec<CmdEvent>,
    accepts: Vec<(u64, bool, u64, u32, Tick)>,
    completes: Vec<(u64, bool, Tick)>,
    power: Vec<(u32, PowerState, Tick)>,
    ras: Vec<(u32, u32, u64, RasMark, Tick)>,
}

impl ChromeTracer {
    /// A tracer for a single-channel controller (channel 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer labelled as channel `channel` (becomes the trace `pid`).
    pub fn for_channel(channel: u32) -> Self {
        Self {
            channel,
            ..Self::default()
        }
    }

    /// The channel this tracer is labelled as.
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// Number of raw events recorded so far (commands, lifecycle marks,
    /// power transitions and RAS marks).
    pub fn event_count(&self) -> usize {
        self.cmds.len()
            + self.accepts.len()
            + self.completes.len()
            + self.power.len()
            + self.ras.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.event_count() == 0
    }

    /// Serialises everything recorded as a complete Chrome trace JSON
    /// document.
    pub fn to_json(&self) -> String {
        Self::combined_json([self])
    }

    /// Merges several tracers (one per channel) into one trace document.
    pub fn combined_json<'a>(tracers: impl IntoIterator<Item = &'a ChromeTracer>) -> String {
        let mut events: Vec<String> = Vec::new();
        for t in tracers {
            t.emit(&mut events);
        }
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(ev);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }

    /// Appends this tracer's event objects (one JSON object per string) to
    /// `out` in a deterministic order.
    fn emit(&self, out: &mut Vec<String>) {
        let pid = self.channel;

        // Track layout: tid 0 = requests, then one tid per (rank, bank)
        // in sorted order, then one per rank.
        let mut banks: Vec<(u32, u32)> = self
            .cmds
            .iter()
            .filter(|c| c.cmd != DramCmd::Ref)
            .map(|c| (c.rank, c.bank))
            .chain(self.ras.iter().map(|&(r, b, _, _, _)| (r, b)))
            .collect();
        banks.sort_unstable();
        banks.dedup();
        let mut ranks: Vec<u32> = self
            .cmds
            .iter()
            .map(|c| c.rank)
            .chain(self.power.iter().map(|&(r, _, _)| r))
            .collect();
        ranks.sort_unstable();
        ranks.dedup();
        let bank_tid = |rank: u32, bank: u32| -> u64 {
            1 + banks.binary_search(&(rank, bank)).unwrap() as u64
        };
        let rank_tid = |rank: u32| -> u64 {
            1 + banks.len() as u64 + ranks.binary_search(&rank).unwrap() as u64
        };

        // Metadata: name the process and every track.
        out.push(meta(pid, 0, "process_name", &format!("channel {pid}")));
        out.push(meta(pid, 0, "thread_name", "requests"));
        for &(r, b) in &banks {
            out.push(meta(
                pid,
                bank_tid(r, b),
                "thread_name",
                &format!("rank {r} bank {b}"),
            ));
        }
        for &r in &ranks {
            out.push(meta(
                pid,
                rank_tid(r),
                "thread_name",
                &format!("rank {r} power"),
            ));
        }

        // Command slices.
        for c in &self.cmds {
            let tid = if c.cmd == DramCmd::Ref {
                rank_tid(c.rank)
            } else {
                bank_tid(c.rank, c.bank)
            };
            let mut args = String::new();
            match c.cmd {
                DramCmd::Act => {
                    let _ = write!(args, "\"row\":{}", c.row);
                }
                DramCmd::Rd | DramCmd::Wr => {
                    let _ = write!(
                        args,
                        "\"row\":{},\"bytes\":{},\"row_hit\":{}",
                        c.row, c.bytes, c.row_hit
                    );
                    if let Some(req) = c.req {
                        let _ = write!(args, ",\"req\":{req}");
                    }
                }
                DramCmd::Pre | DramCmd::Ref => {}
            }
            out.push(slice(c.cmd.name(), "dram", pid, tid, c.at, c.dur, &args));
        }

        // Power residency: a slice per power-down / self-refresh span,
        // closed by the next transition (or the end of the trace).
        let end = self.end_tick();
        for &r in &ranks {
            let mut spans: Vec<(PowerState, Tick)> = self
                .power
                .iter()
                .filter(|&&(pr, _, _)| pr == r)
                .map(|&(_, s, at)| (s, at))
                .collect();
            spans.sort_by_key(|&(_, at)| at);
            for (i, &(state, at)) in spans.iter().enumerate() {
                if state == PowerState::Active {
                    continue;
                }
                let until = spans
                    .get(i + 1)
                    .map(|&(_, next)| next)
                    .unwrap_or(end)
                    .max(at);
                out.push(slice(
                    state.name(),
                    "power",
                    pid,
                    rank_tid(r),
                    at,
                    until - at,
                    "",
                ));
            }
        }

        // RAS marks as instant events on the bank track they hit.
        for &(r, b, row, mark, at) in &self.ras {
            let args = format!("\"row\":{row}");
            out.push(instant(mark.name(), "ras", pid, bank_tid(r, b), at, &args));
        }

        // Request lifecycles as nestable async spans on tid 0.
        for &(id, is_read, addr, size, at) in &self.accepts {
            let name = if is_read { "read" } else { "write" };
            let args = format!("\"addr\":\"{addr:#x}\",\"bytes\":{size}");
            out.push(flow("b", name, pid, id, at, &args));
        }
        for &(id, is_read, ready_at) in &self.completes {
            let name = if is_read { "read" } else { "write" };
            out.push(flow("e", name, pid, id, ready_at, ""));
        }
    }

    /// The latest timestamp recorded, used to close open residency spans.
    fn end_tick(&self) -> Tick {
        let mut end = 0;
        for c in &self.cmds {
            end = end.max(c.at + c.dur);
        }
        for &(_, _, _, _, at) in &self.accepts {
            end = end.max(at);
        }
        for &(_, _, at) in &self.completes {
            end = end.max(at);
        }
        for &(_, _, at) in &self.power {
            end = end.max(at);
        }
        for &(_, _, _, _, at) in &self.ras {
            end = end.max(at);
        }
        end
    }
}

impl Probe for ChromeTracer {
    fn dram_cmd(&mut self, ev: CmdEvent) {
        self.cmds.push(ev);
    }

    fn req_accepted(&mut self, id: u64, is_read: bool, addr: u64, size: u32, now: Tick) {
        self.accepts.push((id, is_read, addr, size, now));
    }

    fn req_completed(&mut self, id: u64, is_read: bool, ready_at: Tick) {
        self.completes.push((id, is_read, ready_at));
    }

    fn power_state(&mut self, rank: u32, state: PowerState, at: Tick) {
        self.power.push((rank, state, at));
    }

    fn ras_event(&mut self, rank: u32, bank: u32, row: u64, mark: RasMark, at: Tick) {
        self.ras.push((rank, bank, row, mark, at));
    }
}

/// Ticks (picoseconds) → trace timestamp (microseconds), shortest form.
fn ts(t: Tick) -> String {
    let micros = t as f64 / 1e6;
    format!("{micros}")
}

fn meta(pid: u32, tid: u64, name: &str, value: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{value}\"}}}}"
    )
}

fn slice(name: &str, cat: &str, pid: u32, tid: u64, at: Tick, dur: Tick, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
        ts(at),
        ts(dur),
    )
}

fn instant(name: &str, cat: &str, pid: u32, tid: u64, at: Tick, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
         \"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
        ts(at),
    )
}

fn flow(ph: &str, name: &str, pid: u32, id: u64, at: Tick, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"cat\":\"req\",\"ph\":\"{ph}\",\"id\":\"{id:#x}\",\
         \"ts\":{},\"pid\":{pid},\"tid\":0,\"args\":{{{args}}}}}",
        ts(at),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTracer {
        let mut t = ChromeTracer::for_channel(1);
        t.req_accepted(7, true, 0x1000, 64, 500);
        t.dram_cmd(CmdEvent::act(0, 3, 42, 1_000, 13_500));
        t.dram_cmd(CmdEvent {
            req: Some(7),
            ..CmdEvent::data(DramCmd::Rd, 0, 3, 42, 14_500, 6_000, 64, false)
        });
        t.dram_cmd(CmdEvent::pre(0, 3, 21_000, 13_500));
        t.dram_cmd(CmdEvent::refresh(0, 40_000, 260_000));
        t.power_state(0, PowerState::PoweredDown, 310_000);
        t.power_state(0, PowerState::Active, 350_000);
        t.req_completed(7, true, 25_000);
        t
    }

    #[test]
    fn json_is_valid_and_complete() {
        let t = sample();
        let json = t.to_json();
        crate::json::validate(&json).expect("valid JSON");
        for needle in [
            "\"ACT\"",
            "\"PRE\"",
            "\"RD\"",
            "\"REF\"",
            "\"powerdown\"",
            "\"rank 0 bank 3\"",
            "\"rank 0 power\"",
            "\"requests\"",
            "\"channel 1\"",
            "\"ph\":\"b\"",
            "\"ph\":\"e\"",
            "\"id\":\"0x7\"",
            "\"row\":42",
            "\"row_hit\":false",
            "\"req\":7",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(t.event_count(), 8);
    }

    #[test]
    fn timestamps_are_microseconds() {
        let mut t = ChromeTracer::new();
        t.dram_cmd(CmdEvent::act(0, 0, 1, 2_500_000, 1_000_000));
        let json = t.to_json();
        assert!(json.contains("\"ts\":2.5,\"dur\":1,"), "{json}");
    }

    #[test]
    fn residency_closed_by_trace_end() {
        let mut t = ChromeTracer::new();
        t.power_state(0, PowerState::SelfRefresh, 1_000_000);
        t.dram_cmd(CmdEvent::refresh(0, 2_000_000, 500_000));
        let json = t.to_json();
        // Span runs from 1 µs to the trace end at 2.5 µs → dur 1.5 µs.
        assert!(json.contains("\"selfrefresh\""), "{json}");
        assert!(json.contains("\"ts\":1,\"dur\":1.5,"), "{json}");
    }

    #[test]
    fn combined_merges_channels() {
        let mut a = ChromeTracer::for_channel(0);
        a.dram_cmd(CmdEvent::act(0, 0, 1, 0, 10));
        let mut b = ChromeTracer::for_channel(1);
        b.dram_cmd(CmdEvent::act(0, 0, 2, 0, 10));
        let json = ChromeTracer::combined_json([&a, &b]);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"channel 0\"") && json.contains("\"channel 1\""));
        assert!(json.contains("\"pid\":0") && json.contains("\"pid\":1"));
    }

    #[test]
    fn ras_marks_render_as_instants() {
        let mut t = ChromeTracer::new();
        // No command ever touches (1, 5): the RAS mark alone must create
        // the bank track.
        t.ras_event(1, 5, 77, RasMark::Corrected, 3_000_000);
        t.ras_event(1, 5, 77, RasMark::Retry, 4_000_000);
        let json = t.to_json();
        crate::json::validate(&json).unwrap();
        for needle in [
            "\"corrected\"",
            "\"retry\"",
            "\"cat\":\"ras\"",
            "\"ph\":\"i\"",
            "\"rank 1 bank 5\"",
            "\"row\":77",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert_eq!(t.event_count(), 2);
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = ChromeTracer::new().to_json();
        crate::json::validate(&json).unwrap();
        assert!(ChromeTracer::new().is_empty());
    }
}
