//! Epoch time-series recorder: gem5-style periodic statistics.
//!
//! [`EpochRecorder`] folds the probe event stream into fixed-width time
//! bins ("epochs") of `interval` ticks. Each epoch captures bandwidth, data
//! bus utilisation, row-hit rate, command counts, time-weighted queue
//! occupancy and low-power residency — the quantities gem5's periodic
//! `stats.txt` dumps provide for every DRAM figure in the literature.
//!
//! Quantities that span time (bus busy, queue occupancy, power residency)
//! are split proportionally across the epochs they overlap, so a transfer
//! crossing an epoch boundary contributes to both epochs' utilisation.
//! Because DRAM command timestamps point into the future (the event model
//! schedules ahead of `now`), bins are indexed by absolute time and grown
//! on demand rather than rolled forward.

use crate::json::json_f64;
use crate::probe::{CmdEvent, DramCmd, PowerState, Probe, RasMark};
use dramctrl_kernel::Tick;
use std::fmt::Write as _;

/// Per-epoch accumulators (raw sums; derived rates live on [`EpochRow`]).
#[derive(Debug, Clone, Copy, Default)]
struct Bin {
    bytes_read: u64,
    bytes_written: u64,
    bus_busy: Tick,
    row_hits: u64,
    row_misses: u64,
    acts: u64,
    pres: u64,
    refs: u64,
    rdq_integral: u128,
    wrq_integral: u128,
    powerdown: Tick,
    selfref: Tick,
    ras_corrected: u64,
    ras_uncorrected: u64,
    ras_retries: u64,
}

/// One finished epoch, with derived rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// First tick of the epoch (inclusive).
    pub start: Tick,
    /// Last tick of the epoch (exclusive).
    pub end: Tick,
    /// Bytes read from DRAM during the epoch.
    pub bytes_read: u64,
    /// Bytes written to DRAM during the epoch.
    pub bytes_written: u64,
    /// Ticks the data bus was busy within the epoch.
    pub bus_busy: Tick,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Column accesses that missed (required activation).
    pub row_misses: u64,
    /// ACT commands issued.
    pub acts: u64,
    /// PRE commands issued.
    pub pres: u64,
    /// REF commands issued.
    pub refs: u64,
    /// Time-weighted average read-queue depth.
    pub avg_rdq: f64,
    /// Time-weighted average write-queue depth.
    pub avg_wrq: f64,
    /// Rank-ticks spent in precharge power-down (summed over ranks).
    pub powerdown: Tick,
    /// Rank-ticks spent in self-refresh (summed over ranks).
    pub selfref: Tick,
    /// Faulty bursts corrected by ECC in the epoch.
    pub ras_corrected: u64,
    /// Faulty bursts detected but not corrected (including silent
    /// corruptions, counted by the controller's fault model).
    pub ras_uncorrected: u64,
    /// Link-error retries issued in the epoch.
    pub ras_retries: u64,
}

impl EpochRow {
    /// Total data bandwidth over the epoch in GB/s (ticks are picoseconds,
    /// so bytes/tick × 1000 = GB/s).
    pub fn bandwidth_gbps(&self) -> f64 {
        let span = self.end - self.start;
        if span == 0 {
            return 0.0;
        }
        (self.bytes_read + self.bytes_written) as f64 / span as f64 * 1000.0
    }

    /// Fraction of the epoch the data bus was transferring.
    pub fn bus_util(&self) -> f64 {
        let span = self.end - self.start;
        if span == 0 {
            return 0.0;
        }
        self.bus_busy as f64 / span as f64
    }

    /// Row-hit fraction of column accesses in the epoch (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            return 0.0;
        }
        self.row_hits as f64 / total as f64
    }
}

/// Folds probe events into fixed-width epochs. Implements [`Probe`], so it
/// plugs directly into an instrumented controller; call
/// [`finish`](Self::finish) once at the end of the run to close the open
/// occupancy and residency spans, then export with [`to_csv`](Self::to_csv)
/// or [`to_jsonl`](Self::to_jsonl).
#[derive(Debug, Clone)]
pub struct EpochRecorder {
    interval: Tick,
    bins: Vec<Bin>,
    /// Current queue depths and the tick they took effect.
    rdq: usize,
    wrq: usize,
    q_since: Tick,
    /// Per-rank power state and the tick it was entered.
    ranks: Vec<(u32, PowerState, Tick)>,
    /// End of recording, set by [`finish`](Self::finish).
    end: Tick,
}

impl EpochRecorder {
    /// A recorder binning every `interval` ticks. `interval` must be
    /// non-zero.
    pub fn new(interval: Tick) -> Self {
        assert!(interval > 0, "epoch interval must be non-zero");
        Self {
            interval,
            bins: Vec::new(),
            rdq: 0,
            wrq: 0,
            q_since: 0,
            ranks: Vec::new(),
            end: 0,
        }
    }

    /// The configured epoch width in ticks.
    pub fn interval(&self) -> Tick {
        self.interval
    }

    /// Closes the open queue-occupancy and power-residency spans at `end`
    /// and fixes the recording length. Call exactly once, after the
    /// simulation has drained.
    pub fn finish(&mut self, end: Tick) {
        let end = end.max(self.end);
        if end > self.q_since {
            let (rdq, wrq, since) = (self.rdq as u128, self.wrq as u128, self.q_since);
            self.add_span(since, end, |bin, span| {
                bin.rdq_integral += rdq * u128::from(span);
                bin.wrq_integral += wrq * u128::from(span);
            });
            self.q_since = end;
        }
        for i in 0..self.ranks.len() {
            let (_, state, since) = self.ranks[i];
            if end > since {
                self.add_residency(state, since, end);
                self.ranks[i].2 = end;
            }
        }
        self.end = end;
    }

    /// The rows recorded so far. Spans still open (no [`finish`] yet) are
    /// not included in their bins.
    ///
    /// [`finish`]: Self::finish
    pub fn rows(&self) -> Vec<EpochRow> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, bin)| {
                let start = i as Tick * self.interval;
                let end = (start + self.interval).min(self.end.max(start + self.interval));
                let span = end - start;
                EpochRow {
                    epoch: i,
                    start,
                    end,
                    bytes_read: bin.bytes_read,
                    bytes_written: bin.bytes_written,
                    bus_busy: bin.bus_busy,
                    row_hits: bin.row_hits,
                    row_misses: bin.row_misses,
                    acts: bin.acts,
                    pres: bin.pres,
                    refs: bin.refs,
                    avg_rdq: bin.rdq_integral as f64 / span as f64,
                    avg_wrq: bin.wrq_integral as f64 / span as f64,
                    powerdown: bin.powerdown,
                    selfref: bin.selfref,
                    ras_corrected: bin.ras_corrected,
                    ras_uncorrected: bin.ras_uncorrected,
                    ras_retries: bin.ras_retries,
                }
            })
            .collect()
    }

    /// Renders the time-series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,start_ps,end_ps,bytes_read,bytes_written,bandwidth_gbps,bus_util,\
             row_hits,row_misses,row_hit_rate,acts,pres,refs,avg_rdq,avg_wrq,\
             powerdown_ps,selfref_ps,ras_corrected,ras_uncorrected,ras_retries\n",
        );
        for r in self.rows() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.6},{:.6},{},{},{:.6},{},{},{},{:.6},{:.6},{},{},{},{},{}",
                r.epoch,
                r.start,
                r.end,
                r.bytes_read,
                r.bytes_written,
                r.bandwidth_gbps(),
                r.bus_util(),
                r.row_hits,
                r.row_misses,
                r.row_hit_rate(),
                r.acts,
                r.pres,
                r.refs,
                r.avg_rdq,
                r.avg_wrq,
                r.powerdown,
                r.selfref,
                r.ras_corrected,
                r.ras_uncorrected,
                r.ras_retries,
            );
        }
        out
    }

    /// Renders the time-series as JSON lines (one object per epoch, same
    /// fields as the CSV).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.rows() {
            let _ = writeln!(
                out,
                "{{\"epoch\":{},\"start_ps\":{},\"end_ps\":{},\"bytes_read\":{},\
                 \"bytes_written\":{},\"bandwidth_gbps\":{},\"bus_util\":{},\
                 \"row_hits\":{},\"row_misses\":{},\"row_hit_rate\":{},\
                 \"acts\":{},\"pres\":{},\"refs\":{},\"avg_rdq\":{},\"avg_wrq\":{},\
                 \"powerdown_ps\":{},\"selfref_ps\":{},\
                 \"ras_corrected\":{},\"ras_uncorrected\":{},\"ras_retries\":{}}}",
                r.epoch,
                r.start,
                r.end,
                r.bytes_read,
                r.bytes_written,
                json_f64(r.bandwidth_gbps()),
                json_f64(r.bus_util()),
                r.row_hits,
                r.row_misses,
                json_f64(r.row_hit_rate()),
                r.acts,
                r.pres,
                r.refs,
                json_f64(r.avg_rdq),
                json_f64(r.avg_wrq),
                r.powerdown,
                r.selfref,
                r.ras_corrected,
                r.ras_uncorrected,
                r.ras_retries,
            );
        }
        out
    }

    /// Merges another recorder's bins into this one (element-wise sums),
    /// e.g. to combine the per-channel recorders of a multi-channel system
    /// into one system-level time-series. Both recorders must use the same
    /// interval, and both should be [`finish`](Self::finish)ed first so no
    /// open spans are lost.
    ///
    /// # Panics
    /// Panics if the intervals differ.
    pub fn absorb(&mut self, other: &EpochRecorder) {
        assert_eq!(
            self.interval, other.interval,
            "cannot absorb a recorder with a different epoch interval"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), Bin::default());
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            dst.bytes_read += src.bytes_read;
            dst.bytes_written += src.bytes_written;
            dst.bus_busy += src.bus_busy;
            dst.row_hits += src.row_hits;
            dst.row_misses += src.row_misses;
            dst.acts += src.acts;
            dst.pres += src.pres;
            dst.refs += src.refs;
            dst.rdq_integral += src.rdq_integral;
            dst.wrq_integral += src.wrq_integral;
            dst.powerdown += src.powerdown;
            dst.selfref += src.selfref;
            dst.ras_corrected += src.ras_corrected;
            dst.ras_uncorrected += src.ras_uncorrected;
            dst.ras_retries += src.ras_retries;
        }
        self.end = self.end.max(other.end);
    }

    fn bin_mut(&mut self, at: Tick) -> &mut Bin {
        let idx = (at / self.interval) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, Bin::default());
        }
        self.end = self.end.max(at);
        &mut self.bins[idx]
    }

    /// Applies `f(bin, overlap_ticks)` to every bin overlapping
    /// `[from, to)`.
    fn add_span(&mut self, from: Tick, to: Tick, mut f: impl FnMut(&mut Bin, Tick)) {
        if to <= from {
            return;
        }
        let interval = self.interval;
        let mut at = from;
        while at < to {
            let bin_end = (at / interval + 1) * interval;
            let seg_end = bin_end.min(to);
            let span = seg_end - at;
            f(self.bin_mut(at), span);
            at = seg_end;
        }
        self.end = self.end.max(to);
    }

    fn add_residency(&mut self, state: PowerState, from: Tick, to: Tick) {
        match state {
            PowerState::Active => {}
            PowerState::PoweredDown => {
                self.add_span(from, to, |bin, span| bin.powerdown += span);
            }
            PowerState::SelfRefresh => {
                self.add_span(from, to, |bin, span| bin.selfref += span);
            }
        }
    }
}

impl Probe for EpochRecorder {
    fn dram_cmd(&mut self, ev: CmdEvent) {
        match ev.cmd {
            DramCmd::Act => self.bin_mut(ev.at).acts += 1,
            DramCmd::Pre => self.bin_mut(ev.at).pres += 1,
            DramCmd::Ref => self.bin_mut(ev.at).refs += 1,
            DramCmd::Rd | DramCmd::Wr => {
                {
                    let bin = self.bin_mut(ev.at);
                    if ev.cmd == DramCmd::Rd {
                        bin.bytes_read += u64::from(ev.bytes);
                    } else {
                        bin.bytes_written += u64::from(ev.bytes);
                    }
                    if ev.row_hit {
                        bin.row_hits += 1;
                    } else {
                        bin.row_misses += 1;
                    }
                }
                self.add_span(ev.at, ev.at + ev.dur, |bin, span| bin.bus_busy += span);
            }
        }
    }

    fn queue_depth(&mut self, read_q: usize, write_q: usize, now: Tick) {
        if now > self.q_since {
            let (rdq, wrq, since) = (self.rdq as u128, self.wrq as u128, self.q_since);
            self.add_span(since, now, |bin, span| {
                bin.rdq_integral += rdq * u128::from(span);
                bin.wrq_integral += wrq * u128::from(span);
            });
            self.q_since = now;
        }
        self.rdq = read_q;
        self.wrq = write_q;
    }

    fn ras_event(&mut self, _rank: u32, _bank: u32, _row: u64, mark: RasMark, at: Tick) {
        let bin = self.bin_mut(at);
        match mark {
            RasMark::Corrected => bin.ras_corrected += 1,
            RasMark::Uncorrected | RasMark::Silent => bin.ras_uncorrected += 1,
            RasMark::Retry => bin.ras_retries += 1,
            RasMark::Remap | RasMark::RankOffline => {}
        }
    }

    fn power_state(&mut self, rank: u32, state: PowerState, at: Tick) {
        if let Some(entry) = self.ranks.iter_mut().find(|(r, _, _)| *r == rank) {
            let (_, old, since) = *entry;
            *entry = (rank, state, at);
            if at > since {
                self.add_residency(old, since, at);
            }
        } else {
            // First sighting: the rank was active from tick 0.
            self.ranks.push((rank, state, at));
            self.end = self.end.max(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_and_hit_rate_per_epoch() {
        let mut r = EpochRecorder::new(1_000);
        // Epoch 0: one 64-byte read, row miss.
        r.dram_cmd(CmdEvent::data(DramCmd::Rd, 0, 0, 1, 100, 200, 64, false));
        // Epoch 2: one 64-byte write, row hit.
        r.dram_cmd(CmdEvent::data(DramCmd::Wr, 0, 0, 1, 2_100, 200, 64, true));
        r.finish(3_000);
        let rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].bytes_read, 64);
        assert_eq!(rows[0].row_misses, 1);
        assert!((rows[0].bandwidth_gbps() - 64.0).abs() < 1e-9);
        assert!((rows[0].bus_util() - 0.2).abs() < 1e-9);
        assert_eq!(rows[1].bytes_read + rows[1].bytes_written, 0);
        assert_eq!(rows[2].bytes_written, 64);
        assert!((rows[2].row_hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spans_split_across_epochs() {
        let mut r = EpochRecorder::new(1_000);
        // A transfer crossing the epoch boundary: 600 ticks in epoch 0,
        // 400 in epoch 1.
        r.dram_cmd(CmdEvent::data(DramCmd::Rd, 0, 0, 1, 400, 1_000, 64, false));
        r.finish(2_000);
        let rows = r.rows();
        assert_eq!(rows[0].bus_busy, 600);
        assert_eq!(rows[1].bus_busy, 400);
        // Bytes are attributed to the start epoch only.
        assert_eq!(rows[0].bytes_read, 64);
        assert_eq!(rows[1].bytes_read, 0);
    }

    #[test]
    fn queue_occupancy_is_time_weighted() {
        let mut r = EpochRecorder::new(1_000);
        r.queue_depth(4, 0, 500); // depth 0 for [0,500)
        r.queue_depth(0, 2, 1_500); // rd 4 for [500,1500)
        r.finish(2_000); // wr 2 for [1500,2000)
        let rows = r.rows();
        // Epoch 0: rd 4 over [500,1000) → integral 2000 / 1000 = 2.0.
        assert!((rows[0].avg_rdq - 2.0).abs() < 1e-9);
        // Epoch 1: rd 4 over [1000,1500) → 2.0; wr 2 over [1500,2000) → 1.0.
        assert!((rows[1].avg_rdq - 2.0).abs() < 1e-9);
        assert!((rows[1].avg_wrq - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_residency_split() {
        let mut r = EpochRecorder::new(1_000);
        r.power_state(0, PowerState::PoweredDown, 800);
        r.power_state(0, PowerState::Active, 1_200);
        r.power_state(1, PowerState::SelfRefresh, 1_500);
        r.finish(2_000);
        let rows = r.rows();
        assert_eq!(rows[0].powerdown, 200);
        assert_eq!(rows[1].powerdown, 200);
        assert_eq!(rows[1].selfref, 500);
    }

    #[test]
    fn exports_are_parseable() {
        let mut r = EpochRecorder::new(1_000);
        r.dram_cmd(CmdEvent::data(DramCmd::Rd, 0, 0, 1, 100, 200, 64, true));
        r.dram_cmd(CmdEvent::act(0, 0, 1, 1_200, 300));
        r.finish(2_000);
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3); // header + 2 epochs
        assert!(csv.starts_with("epoch,start_ps"));
        for line in r.to_jsonl().lines() {
            crate::json::validate(line).expect("valid JSONL row");
        }
        assert_eq!(r.to_jsonl().lines().count(), 2);
    }

    #[test]
    fn absorb_sums_channels() {
        let mut a = EpochRecorder::new(1_000);
        a.dram_cmd(CmdEvent::data(DramCmd::Rd, 0, 0, 1, 100, 200, 64, true));
        a.finish(2_000);
        let mut b = EpochRecorder::new(1_000);
        b.dram_cmd(CmdEvent::data(DramCmd::Wr, 0, 1, 2, 1_100, 200, 32, false));
        b.dram_cmd(CmdEvent::act(0, 1, 2, 900, 300));
        b.finish(3_000);
        a.absorb(&b);
        let rows = a.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].bytes_read, 64);
        assert_eq!(rows[0].acts, 1);
        assert_eq!(rows[1].bytes_written, 32);
        assert_eq!(rows[1].row_misses, 1);
    }

    #[test]
    fn ras_marks_are_binned_and_exported() {
        let mut r = EpochRecorder::new(1_000);
        r.ras_event(0, 0, 7, RasMark::Corrected, 100);
        r.ras_event(0, 0, 7, RasMark::Retry, 200);
        r.ras_event(0, 1, 8, RasMark::Uncorrected, 1_100);
        r.ras_event(0, 1, 8, RasMark::Silent, 1_200);
        r.ras_event(0, 1, 8, RasMark::Remap, 1_300); // not counted
        r.finish(2_000);
        let rows = r.rows();
        assert_eq!(rows[0].ras_corrected, 1);
        assert_eq!(rows[0].ras_retries, 1);
        assert_eq!(rows[1].ras_uncorrected, 2);
        let csv = r.to_csv();
        assert!(
            csv.lines().next().unwrap().ends_with("ras_retries"),
            "{csv}"
        );
        for line in r.to_jsonl().lines() {
            crate::json::validate(line).unwrap();
        }
        assert!(r.to_jsonl().contains("\"ras_corrected\":1"));
        // Absorb sums the RAS columns too.
        let mut other = EpochRecorder::new(1_000);
        other.ras_event(0, 0, 9, RasMark::Corrected, 150);
        other.finish(2_000);
        r.absorb(&other);
        assert_eq!(r.rows()[0].ras_corrected, 2);
    }

    #[test]
    fn out_of_order_queue_updates_do_not_panic() {
        let mut r = EpochRecorder::new(1_000);
        r.queue_depth(1, 0, 1_000);
        r.queue_depth(2, 0, 500); // earlier tick: depth updates, no negative span
        r.finish(2_000);
        let rows = r.rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[1].avg_rdq - 2.0).abs() < 1e-9);
    }
}
