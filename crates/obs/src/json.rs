//! Minimal JSON utilities: a recursive-descent validator (no value tree,
//! no allocation proportional to input) plus the escaping/formatting
//! helpers the sinks share.
//!
//! The validator exists so tests and CI can assert that emitted traces are
//! well-formed **without** pulling a JSON dependency into the workspace —
//! the crate is deliberately dep-free. It checks full RFC 8259 syntax:
//! nesting, string escapes (including `\uXXXX`), number grammar, and
//! rejects trailing garbage.

/// Validates that `input` is exactly one well-formed JSON value (plus
/// surrounding whitespace). Returns the byte offset of the first error.
pub fn validate(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(())
}

/// A syntax error with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.eat(b'{', "expected '{'")?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.eat(b'[', "expected '['")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.eat(b'"', "expected '\"'")?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("invalid \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected digit after '.'")),
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected digit in exponent")),
            }
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

/// JSON string literal for `s`, with the required escapes.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an f64: shortest round-trip form; non-finite values
/// (not representable in JSON) become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " false ",
            "0",
            "-1.5e-3",
            "123.456",
            "\"hi \\n \\u00e9\"",
            "[]",
            "[1, 2, [3, {\"a\": null}]]",
            "{}",
            "{\"a\":{\"b\":[1,\"x\",true]},\"c\":-0.5}",
        ] {
            assert!(validate(doc).is_ok(), "should accept: {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "nul",
            "01",
            "1.",
            "1e",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12g4\"",
            "[1] extra",
            "\u{1}",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = validate("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn helpers_escape_and_format() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert!(validate(&json_str("any\tthing")).is_ok());
    }
}
