//! Closed-loop system tests: the feedback properties the paper's case
//! studies rely on (Section IV), at miniature scale.

use dramctrl::{CtrlConfig, DramCtrl};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy};
use dramctrl_mem::{presets, AddrMapping, MemSpec};
use dramctrl_system::{workload, MultiChannel, System, SystemConfig};

fn ev_ctrl(spec: MemSpec, channels: u32) -> DramCtrl {
    let mut cfg = CtrlConfig::new(spec);
    cfg.channels = channels;
    DramCtrl::new(cfg).unwrap()
}

fn run_on(spec: MemSpec, cores: usize, profile: workload::WorkloadProfile, insts: u64) -> f64 {
    let ctrl = ev_ctrl(spec, 1);
    let profiles = vec![profile; cores];
    let mut sys = System::new(SystemConfig::table2(cores, insts), ctrl, &profiles, 7).unwrap();
    sys.run().ipc
}

#[test]
fn faster_memory_raises_ipc_for_memory_bound_work() {
    let slow = run_on(presets::wideio_200_x128(), 2, workload::canneal(), 60_000);
    let fast = run_on(presets::gddr5_4000_x64(), 2, workload::canneal(), 60_000);
    assert!(
        fast > slow * 1.05,
        "canneal should feel memory speed: {slow:.3} -> {fast:.3}"
    );
}

#[test]
fn compute_bound_work_is_memory_insensitive() {
    // An L1-resident working set: after the cold phase the core never
    // leaves its private cache, so memory speed is irrelevant.
    let tiny = workload::WorkloadProfile {
        name: "l1-resident",
        footprint: 16 << 10,
        read_pct: 80,
        mem_ref_interval: 6,
        seq_lines: 4,
        hot_fraction: 0.5,
        hot_pct: 50,
    };
    // A long run so the (memory-sensitive) cold phase is negligible.
    let slow = run_on(presets::wideio_200_x128(), 1, tiny, 1_000_000);
    let fast = run_on(presets::gddr5_4000_x64(), 1, tiny, 1_000_000);
    let ratio = fast / slow;
    assert!(
        (0.95..1.1).contains(&ratio),
        "an L1-resident workload should barely feel memory speed, got {ratio:.3}"
    );
}

#[test]
fn multi_channel_helps_bandwidth_bound_workloads() {
    let stream = workload::parsec()
        .into_iter()
        .find(|p| p.name == "streamcluster")
        .unwrap();
    let cores = 4;
    let single = {
        let ctrl = ev_ctrl(presets::wideio_200_x128(), 1);
        let mut sys = System::new(
            SystemConfig::table2(cores, 60_000),
            ctrl,
            &vec![stream; cores],
            7,
        )
        .unwrap();
        sys.run().ipc
    };
    let quad = {
        let ctrls = (0..4)
            .map(|_| ev_ctrl(presets::wideio_200_x128(), 4))
            .collect();
        let xbar = MultiChannel::new(ctrls, 0).unwrap();
        let mut sys = System::new(
            SystemConfig::table2(cores, 60_000),
            xbar,
            &vec![stream; cores],
            7,
        )
        .unwrap();
        sys.run().ipc
    };
    assert!(
        quad > single * 1.2,
        "4 WideIO channels should beat 1: {single:.3} -> {quad:.3}"
    );
}

#[test]
fn deterministic_runs() {
    let run = || {
        let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
        let profiles = vec![workload::canneal(); 2];
        let mut sys = System::new(SystemConfig::table2(2, 40_000), ctrl, &profiles, 99).unwrap();
        let r = sys.run();
        (
            r.duration,
            r.insts,
            r.dram.rd_bursts,
            r.dram.wr_bursts,
            format!("{:?}", r.per_core_ipc),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn writebacks_reach_dram() {
    // A write-heavy workload with an LLC-overflowing footprint must
    // produce DRAM writes via dirty evictions.
    let mut p = workload::canneal();
    p.read_pct = 40;
    let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
    let mut sys = System::new(SystemConfig::table2(2, 60_000), ctrl, &[p; 2], 5).unwrap();
    let r = sys.run();
    assert!(r.dram.wr_bursts > 0, "dirty evictions must write back");
    assert!(r.dram.rd_bursts > r.dram.wr_bursts, "fills dominate");
}

#[test]
fn llc_filters_traffic() {
    // The same workload with a bigger LLC sends less traffic to DRAM.
    let run_with_llc = |mb: u64| {
        let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
        let mut cfg = SystemConfig::table2(2, 60_000);
        cfg.llc.size = mb << 20;
        let p = workload::parsec()
            .into_iter()
            .find(|p| p.name == "freqmine")
            .unwrap();
        let mut sys = System::new(cfg, ctrl, &[p; 2], 11).unwrap();
        let r = sys.run();
        (r.llc_hit_rate, r.dram.rd_bursts)
    };
    let (hit_small, traffic_small) = run_with_llc(1);
    let (hit_big, traffic_big) = run_with_llc(16);
    assert!(hit_big > hit_small, "{hit_small:.3} -> {hit_big:.3}");
    assert!(traffic_big < traffic_small);
}

/// Miniature Figure 8: both controller models under the same closed loop
/// agree to first order on IPC, LLC miss latency and DRAM traffic.
#[test]
fn event_and_cycle_models_agree_in_closed_loop() {
    let profile = workload::canneal();
    let cores = 2;
    let insts = 50_000;

    let ev = {
        let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        cfg.page_policy = dramctrl::PagePolicy::Closed;
        cfg.mapping = AddrMapping::RoCoRaBaCh;
        let ctrl = DramCtrl::new(cfg).unwrap();
        let mut sys = System::new(
            SystemConfig::table2(cores, insts),
            ctrl,
            &vec![profile; cores],
            13,
        )
        .unwrap();
        sys.run()
    };
    let cy = {
        let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cfg.page_policy = CyclePagePolicy::Closed;
        cfg.mapping = AddrMapping::RoCoRaBaCh;
        let ctrl = CycleCtrl::new(cfg).unwrap();
        let mut sys = System::new(
            SystemConfig::table2(cores, insts),
            ctrl,
            &vec![profile; cores],
            13,
        )
        .unwrap();
        sys.run()
    };

    let ipc_ratio = cy.ipc / ev.ipc;
    assert!(
        (0.85..1.15).contains(&ipc_ratio),
        "IPC ratio {ipc_ratio:.3}"
    );
    let lat_ratio = cy.llc_miss_lat.mean() / ev.llc_miss_lat.mean();
    assert!(
        (0.75..1.3).contains(&lat_ratio),
        "miss latency ratio {lat_ratio:.3}"
    );
    // Identical instruction streams produce near-identical fill traffic.
    let traffic_ratio = cy.dram.rd_bursts as f64 / ev.dram.rd_bursts as f64;
    assert!(
        (0.95..1.05).contains(&traffic_ratio),
        "traffic ratio {traffic_ratio:.3}"
    );
}

#[test]
fn prefetcher_helps_latency_bound_sequential_work() {
    // Prefetching pays when the workload is latency-bound with spatial
    // locality: the in-flight next-line fills merge with (or beat) the
    // demand accesses. On bandwidth-bound traffic it cannot help — the
    // bus is the bottleneck — which is why the gain here is a few
    // percent, not a multiple.
    let profile = workload::WorkloadProfile {
        name: "latency-bound-seq",
        footprint: 8 << 20,
        read_pct: 100,
        mem_ref_interval: 20,
        seq_lines: 32,
        hot_fraction: 0.05,
        hot_pct: 5,
    };
    let run = |degree: u32| {
        let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
        let mut cfg = SystemConfig::table2(2, 80_000);
        cfg.prefetch_degree = degree;
        let mut sys = System::new(cfg, ctrl, &[profile; 2], 21).unwrap();
        sys.run()
    };
    let off = run(0);
    let on = run(4);
    assert_eq!(off.prefetches, 0);
    assert!(on.prefetches > 1_000, "prefetches = {}", on.prefetches);
    assert!(
        on.ipc > off.ipc * 1.01,
        "IPC should improve: {:.4} -> {:.4}",
        off.ipc,
        on.ipc
    );
}

#[test]
fn prefetcher_harmless_on_random_workloads() {
    // canneal's scattered reads gain little, but the prefetcher must not
    // tank performance either (MSHR-bounded, drops on pressure).
    let run = |degree: u32| {
        let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
        let mut cfg = SystemConfig::table2(2, 50_000);
        cfg.prefetch_degree = degree;
        let mut sys = System::new(cfg, ctrl, &[workload::canneal(); 2], 21).unwrap();
        sys.run()
    };
    let (off, on) = (run(0), run(2));
    let ratio = on.ipc / off.ipc;
    assert!(ratio > 0.85, "prefetching cost too much: ratio {ratio:.3}");
}

#[test]
fn warmup_isolates_the_region_of_interest() {
    let p = workload::canneal();
    let run = |warmup: u64| {
        let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
        let mut cfg = SystemConfig::table2(2, 60_000);
        cfg.warmup_insts = warmup;
        let mut sys = System::new(cfg, ctrl, &[p; 2], 17).unwrap();
        sys.run()
    };
    let cold = run(0);
    let warm = run(20_000);
    // The warm report covers only post-warm-up work: strictly less DRAM
    // traffic and a shorter region, with ROI-relative utilisation defined.
    assert!(warm.dram.rd_bursts < cold.dram.rd_bursts);
    assert!(warm.roi_duration < warm.duration);
    assert_eq!(cold.roi_duration, cold.duration);
    // Warm IPC excludes the cold-cache region (canneal stays
    // miss-dominated, so the effect is small but the plumbing must hold).
    assert!(warm.ipc > 0.0);
    assert!(warm.llc_miss_lat.count() < cold.llc_miss_lat.count());
}

#[test]
fn warmup_must_be_below_target() {
    let mut cfg = SystemConfig::table2(1, 1_000);
    cfg.warmup_insts = 1_000;
    let ctrl = ev_ctrl(presets::ddr3_1600_x64(), 1);
    assert!(System::new(cfg, ctrl, &[workload::canneal()], 0).is_err());
}
