//! Multi-channel crossbar.
//!
//! Channel interleaving happens *outside* the controllers (paper Section
//! II-A/II-F): the crossbar routes each request to a channel based on the
//! address mapping's interleaving granularity (cache-line-sized for the
//! `..Ch` mappings, row-buffer-sized for `RoRaBaChCo`) and merges the
//! controllers' response streams. A [`MultiChannel`] is itself a
//! [`Controller`], so testers and the system model are oblivious to the
//! channel count — this is how the WideIO (4 channels), LPDDR3 (2
//! channels) and HMC-like (16 channels) configurations of Sections III-D
//! and IV-B are built.

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{
    ActivityStats, AddrMapping, CommonStats, Controller, MemCmd, MemRequest, MemResponse, MemSpec,
    Rejected,
};
use dramctrl_obs::{NoProbe, Probe};
use dramctrl_stats::Report;

/// A set of per-channel controllers behind an interleaving crossbar.
///
/// The crossbar adds a fixed `latency` to every response (modelling its
/// forward and return hops) and applies per-channel flow control: a
/// request is rejected only if *its* channel is full.
///
/// Like the controllers, the crossbar carries a `dramctrl-obs` probe type
/// parameter (default [`NoProbe`], compiled away): a live probe observes
/// every routing decision via `xbar_route`. Per-channel DRAM activity is
/// instead observed by giving each channel controller its own probe.
///
/// # Example
/// ```
/// use dramctrl::{CtrlConfig, DramCtrl};
/// use dramctrl_mem::{presets, Controller, MemRequest, ReqId};
/// use dramctrl_system::MultiChannel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Four WideIO channels, as in the paper's case study.
/// let mut xbar = MultiChannel::new(
///     (0..4)
///         .map(|_| {
///             let mut cfg = CtrlConfig::new(presets::wideio_200_x128());
///             cfg.channels = 4;
///             DramCtrl::new(cfg)
///         })
///         .collect::<Result<Vec<_>, _>>()?,
///     0,
/// )?;
/// xbar.try_send(MemRequest::read(ReqId(0), 0x40, 64), 0)?;
/// let mut out = Vec::new();
/// xbar.drain(&mut out);
/// assert_eq!(out.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiChannel<C: Controller, P: Probe = NoProbe> {
    channels: Vec<C>,
    mapping: AddrMapping,
    latency: Tick,
    probe: P,
}

/// Error constructing a [`MultiChannel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XbarError(String);

impl std::fmt::Display for XbarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid crossbar config: {}", self.0)
    }
}

impl std::error::Error for XbarError {}

impl<C: Controller> MultiChannel<C> {
    /// Creates an uninstrumented crossbar over the given controllers,
    /// which must share one device specification (organisation and mapping
    /// are read from the first).
    ///
    /// # Errors
    /// Returns an [`XbarError`] if no controllers are given or their specs
    /// differ.
    pub fn new(channels: Vec<C>, latency: Tick) -> Result<Self, XbarError> {
        Self::with_probe(channels, latency, NoProbe)
    }
}

impl<C: Controller, P: Probe> MultiChannel<C, P> {
    /// Creates a crossbar with an attached instrumentation probe.
    ///
    /// # Errors
    /// Returns an [`XbarError`] if no controllers are given or their specs
    /// differ.
    pub fn with_probe(channels: Vec<C>, latency: Tick, probe: P) -> Result<Self, XbarError> {
        let first = channels
            .first()
            .ok_or_else(|| XbarError("at least one channel required".into()))?;
        let spec = first.spec().clone();
        if channels.iter().any(|c| c.spec() != &spec) {
            return Err(XbarError("all channels must share one device spec".into()));
        }
        // The interleaving must match what the controllers decode. The
        // mapping is a controller-private parameter; we standardise on the
        // row-hit-friendly default unless told otherwise via `with_mapping`.
        Ok(Self {
            channels,
            mapping: AddrMapping::RoRaBaCoCh,
            latency,
            probe,
        })
    }

    /// Uses `mapping` for channel selection (must match the controllers'
    /// address mapping).
    pub fn with_mapping(mut self, mapping: AddrMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// The attached instrumentation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the crossbar, returning the channel controllers and the
    /// probe (e.g. to collect per-channel tracers at the end of a run).
    pub fn into_parts(self) -> (Vec<C>, P) {
        (self.channels, self.probe)
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels.len() as u32
    }

    /// Access to an individual channel controller (e.g. for per-channel
    /// statistics).
    pub fn channel(&self, idx: usize) -> &C {
        &self.channels[idx]
    }

    /// Mutable access to an individual channel controller.
    pub fn channel_mut(&mut self, idx: usize) -> &mut C {
        &mut self.channels[idx]
    }

    fn route(&self, addr: u64) -> usize {
        self.mapping
            .channel_of(addr, &self.channels[0].spec().org, self.channels()) as usize
    }
}

impl<C: Controller, P: Probe> Controller for MultiChannel<C, P> {
    fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), Rejected> {
        let ch = self.route(req.addr);
        self.channels[ch].try_send(req, now)?;
        if P::ENABLED {
            self.probe.xbar_route(req.id.0, ch as u32, now);
        }
        Ok(())
    }

    fn can_accept(&self, cmd: MemCmd, addr: u64, size: u32) -> bool {
        self.channels[self.route(addr)].can_accept(cmd, addr, size)
    }

    fn next_event(&self) -> Option<Tick> {
        self.channels.iter().filter_map(|c| c.next_event()).min()
    }

    fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>) {
        let before = out.len();
        for c in &mut self.channels {
            c.advance_to(limit, out);
        }
        // The crossbar return path adds latency; merge the streams in
        // ready order for deterministic delivery.
        for resp in &mut out[before..] {
            resp.ready_at += self.latency;
        }
        out[before..].sort_by_key(|r| r.ready_at);
    }

    fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick {
        let before = out.len();
        let end = self
            .channels
            .iter_mut()
            .map(|c| c.drain(out))
            .max()
            .unwrap_or(0);
        for resp in &mut out[before..] {
            resp.ready_at += self.latency;
        }
        out[before..].sort_by_key(|r| r.ready_at);
        end + self.latency
    }

    fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    fn spec(&self) -> &MemSpec {
        self.channels[0].spec()
    }

    /// Aggregate statistics over all channels. Note that `bus_busy` is the
    /// *sum* of the channels' bus occupancy, so
    /// [`CommonStats::bus_utilisation`] must be divided by
    /// [`MultiChannel::channels`] to obtain the per-channel average.
    fn common_stats(&self) -> CommonStats {
        let mut total = CommonStats::default();
        for c in &self.channels {
            let s = c.common_stats();
            total.reads_accepted += s.reads_accepted;
            total.writes_accepted += s.writes_accepted;
            total.rd_bursts += s.rd_bursts;
            total.wr_bursts += s.wr_bursts;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.row_hits += s.row_hits;
            total.activates += s.activates;
            total.bus_busy += s.bus_busy;
            total.read_lat_sum += s.read_lat_sum;
        }
        total
    }

    fn activity(&mut self, now: Tick) -> ActivityStats {
        let mut total = ActivityStats::default();
        for c in &mut self.channels {
            let a = c.activity(now);
            total.activates += a.activates;
            total.precharges += a.precharges;
            total.rd_bursts += a.rd_bursts;
            total.wr_bursts += a.wr_bursts;
            total.refreshes += a.refreshes;
            total.time_all_banks_precharged += a.time_all_banks_precharged;
            total.time_powered_down += a.time_powered_down;
            total.time_self_refresh += a.time_self_refresh;
            total.ranks += a.ranks;
        }
        total.sim_time = now;
        total
    }

    fn report(&self, prefix: &str, now: Tick) -> Report {
        let mut r = Report::new(prefix);
        r.counter("channels", u64::from(self.channels()));
        let stats = self.common_stats();
        r.counter("rd_bursts", stats.rd_bursts);
        r.counter("wr_bursts", stats.wr_bursts);
        r.scalar(
            "avg_bus_util",
            stats.bus_utilisation(now) / f64::from(self.channels()),
        );
        r.scalar("page_hit_rate", stats.page_hit_rate());
        for (i, c) in self.channels.iter().enumerate() {
            r.nest(&c.report(&format!("ch{i}"), now));
        }
        r
    }
}

impl<C: Controller + SnapState, P: Probe> SnapState for MultiChannel<C, P> {
    /// Delegates to each channel controller in routing order. The crossbar
    /// itself is stateless between calls (mapping and latency are
    /// configuration), so a channel-count header plus the per-channel
    /// states captures everything.
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.channels.len());
        for c in &self.channels {
            c.save_state(w);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.channels.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot has {n} channels, crossbar has {}",
                self.channels.len()
            )));
        }
        for c in &mut self.channels {
            c.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl::{CtrlConfig, DramCtrl};
    use dramctrl_mem::{presets, ReqId};

    fn xbar(n: u32) -> MultiChannel<DramCtrl> {
        let ctrls = (0..n)
            .map(|_| {
                let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
                cfg.spec.timing.t_refi = 0;
                cfg.channels = n;
                DramCtrl::new(cfg).unwrap()
            })
            .collect();
        MultiChannel::new(ctrls, 0).unwrap()
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(MultiChannel::<DramCtrl>::new(vec![], 0).is_err());
        let a = DramCtrl::new(CtrlConfig::new(presets::ddr3_1333_x64())).unwrap();
        let b = DramCtrl::new(CtrlConfig::new(presets::lpddr3_1600_x32())).unwrap();
        assert!(MultiChannel::new(vec![a, b], 0).is_err());
    }

    #[test]
    fn burst_interleaving_round_robins_channels() {
        let mut x = xbar(4);
        // 8 sequential lines spread over 4 channels, 2 each.
        for i in 0..8u64 {
            x.try_send(MemRequest::read(ReqId(i), i * 64, 64), 0)
                .unwrap();
        }
        let mut out = Vec::new();
        x.drain(&mut out);
        assert_eq!(out.len(), 8);
        for ch in 0..4 {
            assert_eq!(x.channel(ch).common_stats().rd_bursts, 2, "channel {ch}");
        }
    }

    #[test]
    fn four_channels_give_four_times_bandwidth() {
        let run = |n| {
            let mut x = xbar(n);
            let mut out = Vec::new();
            let mut t = 0;
            for i in 0..512u64 {
                let req = MemRequest::read(ReqId(i), i * 64, 64);
                while x.try_send(req, t).is_err() {
                    t = t.max(x.next_event().unwrap());
                    x.advance_to(t, &mut out);
                }
            }
            x.drain(&mut out)
        };
        let (t1, t4) = (run(1), run(4));
        let speedup = t1 as f64 / t4 as f64;
        assert!(speedup > 3.0, "channel scaling speedup {speedup:.2}");
    }

    #[test]
    fn xbar_latency_added_to_responses() {
        let ctrl = {
            let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
            cfg.spec.timing.t_refi = 0;
            DramCtrl::new(cfg).unwrap()
        };
        let mut x = MultiChannel::new(vec![ctrl], 5_000).unwrap();
        x.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
        let mut out = Vec::new();
        x.drain(&mut out);
        // 33 ns DRAM + 5 ns crossbar.
        assert_eq!(out[0].ready_at, 38_000);
    }

    #[test]
    fn responses_sorted_by_ready_time() {
        let mut x = xbar(2);
        for i in 0..32u64 {
            let req = MemRequest::read(ReqId(i), i * 64, 64);
            let mut t = 0;
            let mut out = Vec::new();
            while x.try_send(req, t).is_err() {
                t = t.max(x.next_event().unwrap());
                x.advance_to(t, &mut out);
            }
        }
        let mut out = Vec::new();
        x.drain(&mut out);
        assert!(out.windows(2).all(|w| w[0].ready_at <= w[1].ready_at));
    }

    #[test]
    fn row_buffer_interleaving_granularity() {
        let ctrls = (0..2)
            .map(|_| {
                let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
                cfg.spec.timing.t_refi = 0;
                cfg.channels = 2;
                cfg.mapping = AddrMapping::RoRaBaChCo;
                DramCtrl::new(cfg).unwrap()
            })
            .collect();
        let mut x = MultiChannel::new(ctrls, 0)
            .unwrap()
            .with_mapping(AddrMapping::RoRaBaChCo);
        // A whole row buffer (8 KB) goes to channel 0 before switching.
        for i in 0..4u64 {
            x.try_send(MemRequest::read(ReqId(i), i * 4096, 64), 0)
                .unwrap();
        }
        let mut out = Vec::new();
        x.drain(&mut out);
        assert_eq!(x.channel(0).common_stats().rd_bursts, 2);
        assert_eq!(x.channel(1).common_stats().rd_bursts, 2);
    }
}
