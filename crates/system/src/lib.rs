//! # dramctrl-system — closed-loop memory-system exploration
//!
//! The substrate for the paper's case studies (Section IV): a multicore
//! system model whose cores, caches and interconnect form a feedback loop
//! with the DRAM controller, plus the multi-channel crossbar that builds
//! the LPDDR3/WideIO/HMC-like configurations of Sections II-F and IV-B.
//!
//! * [`MultiChannel`] — channel-interleaving crossbar; itself a
//!   [`Controller`](dramctrl_mem::Controller), so a 16-channel HMC-like
//!   memory drops into any harness that accepts a single controller;
//! * [`CacheArray`] — set-associative tag/LRU/dirty state;
//! * [`WorkloadProfile`] / [`AccessStream`] — PARSEC-like synthetic
//!   workloads (the full-system substitution documented in `DESIGN.md`);
//! * [`System`] — cores + private L1s + shared LLC + controller, run to
//!   an instruction target, reporting IPC, cache hit rates and LLC miss
//!   latency (the metrics of paper Figures 8 and 9);
//! * [`TieredMemory`] — heterogeneous two-tier memory split at an address
//!   boundary (Section II-F's WideIO + LPDDR3 tiered example).
//!
//! # Example: canneal on four cores over DDR3
//!
//! ```
//! use dramctrl::{CtrlConfig, DramCtrl};
//! use dramctrl_mem::presets;
//! use dramctrl_system::{workload, System, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctrl = DramCtrl::new(CtrlConfig::new(presets::ddr3_1600_x64()))?;
//! let profiles = vec![workload::canneal(); 4];
//! let mut sys = System::new(SystemConfig::table2(4, 20_000), ctrl, &profiles, 42)?;
//! let report = sys.run();
//! assert!(report.ipc > 0.0);
//! // canneal misses a lot by design; the DRAM saw real traffic.
//! assert!(report.dram.rd_bursts > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod system;
mod tiered;
pub mod workload;
mod xbar;

pub use cache::{CacheArray, CacheGeometry, Victim};
pub use system::{CoreParams, System, SystemConfig, SystemReport};
pub use tiered::TieredMemory;
pub use workload::{AccessStream, MemRef, WorkloadProfile};
pub use xbar::{MultiChannel, XbarError};
