//! The closed-loop multicore memory system (paper Section IV).
//!
//! Cores with a bounded window of outstanding misses run
//! [`WorkloadProfile`]s behind private L1 caches and a shared LLC; misses
//! go to any [`Controller`] (single channel, or a
//! [`MultiChannel`](crate::MultiChannel)). Miss latency throttles the
//! cores, MSHRs bound memory-level parallelism and the caches filter
//! locality — the feedback loops that traces cannot capture and that
//! motivate full-system evaluation in the paper (Section I).

use std::collections::HashMap;
use std::collections::VecDeque;

use dramctrl_kernel::{Clock, EventQueue, Tick};
use dramctrl_mem::{CommonStats, Controller, MemRequest, MemResponse, ReqId};
use dramctrl_stats::{Average, Report};

use crate::cache::{CacheArray, CacheGeometry};
use crate::workload::{AccessStream, MemRef, WorkloadProfile};

/// Core parameters (paper Table II flavour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreParams {
    /// Core clock.
    pub clock: Clock,
    /// Peak sustained IPC when never missing.
    pub peak_ipc: f64,
    /// Maximum in-flight load misses before the core stalls (ROB/MSHR
    /// window).
    pub max_outstanding: usize,
}

impl Default for CoreParams {
    /// 2 GHz, peak IPC 2, 6 outstanding load misses — the flavour of the
    /// paper's Table II core.
    fn default() -> Self {
        Self {
            clock: Clock::from_frequency_mhz(2_000.0),
            peak_ipc: 2.0,
            max_outstanding: 6,
        }
    }
}

/// Configuration of the memory hierarchy around the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Core parameters (shared by all cores).
    pub core: CoreParams,
    /// Private L1 data cache geometry.
    pub l1: CacheGeometry,
    /// L1 hit latency.
    pub l1_lat: Tick,
    /// Shared last-level cache geometry.
    pub llc: CacheGeometry,
    /// LLC hit latency.
    pub llc_lat: Tick,
    /// LLC miss-status holding registers (outstanding line fills).
    pub llc_mshrs: usize,
    /// Next-N-line prefetch degree at the LLC (0 disables prefetching).
    pub prefetch_degree: u32,
    /// Instructions each core executes before statistics collection
    /// begins (cache warm-up; 0 measures from the start). IPC, DRAM
    /// statistics and miss latencies in the report cover only the region
    /// of interest after every core passed warm-up.
    pub warmup_insts: u64,
    /// Instructions each core must retire (including warm-up).
    pub target_insts: u64,
}

impl SystemConfig {
    /// The paper's Table II configuration: 64 KB 2-way L1 (2 ns),
    /// 512 KB-per-core 8-way shared LLC (12 ns), 16 MSHRs.
    pub fn table2(cores: usize, target_insts: u64) -> Self {
        Self {
            core: CoreParams::default(),
            l1: CacheGeometry {
                size: 64 << 10,
                assoc: 2,
                line: 64,
            },
            l1_lat: 2_000,
            llc: CacheGeometry {
                size: (512 << 10) * cores as u64,
                assoc: 8,
                line: 64,
            },
            llc_lat: 12_000,
            llc_mshrs: 16,
            prefetch_degree: 0,
            warmup_insts: 0,
            target_insts,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.l1.line != self.llc.line {
            return Err("L1 and LLC must share one line size".into());
        }
        if self.llc_mshrs == 0 {
            return Err("llc_mshrs must be positive".into());
        }
        if self.core.max_outstanding == 0 {
            return Err("max_outstanding must be positive".into());
        }
        if self.target_insts == 0 {
            return Err("target_insts must be positive".into());
        }
        if self.warmup_insts >= self.target_insts {
            return Err("warmup_insts must be below target_insts".into());
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    No,
    /// Waiting for an LLC MSHR (or controller queue space); the current
    /// access has not been sent.
    Mshr,
    /// Too many outstanding load misses; the current access was sent,
    /// issue of the next is deferred.
    LoadLimit,
}

#[derive(Debug)]
struct CoreState {
    stream: AccessStream,
    cur: MemRef,
    insts_done: u64,
    outstanding_loads: usize,
    blocked: Blocked,
    /// Tick at which this core crossed the warm-up boundary.
    warm_at: Option<Tick>,
    finish: Option<Tick>,
}

#[derive(Debug)]
struct Fill {
    /// (core, is_load) pairs waiting for this line.
    waiters: Vec<(usize, bool)>,
    issued: Tick,
    dirty: bool,
    /// Issued by the prefetcher rather than a demand miss.
    prefetch: bool,
}

#[derive(Debug)]
enum SysEv {
    /// Core `i` performs its current memory access.
    Issue(usize),
}

/// Results of a [`System::run`].
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Tick at which the last core retired its final instruction.
    pub duration: Tick,
    /// Total instructions retired.
    pub insts: u64,
    /// Per-core IPC.
    pub per_core_ipc: Vec<f64>,
    /// Mean of the per-core IPCs.
    pub ipc: f64,
    /// L1 hit rate over all cores.
    pub l1_hit_rate: f64,
    /// Shared LLC hit rate.
    pub llc_hit_rate: f64,
    /// LLC miss (DRAM round-trip) latency, in ticks.
    pub llc_miss_lat: Average,
    /// Controller statistics snapshot (covering only the region of
    /// interest when warm-up is configured).
    pub dram: CommonStats,
    /// Length of the measured region of interest (equals `duration` when
    /// no warm-up was configured).
    pub roi_duration: Tick,
    /// LLC prefetches issued.
    pub prefetches: u64,
}

impl SystemReport {
    /// Formats the report under `prefix`.
    pub fn report(&self, prefix: &str) -> Report {
        let mut r = Report::new(prefix);
        r.scalar("ipc", self.ipc);
        r.counter("insts", self.insts);
        r.scalar(
            "duration_ms",
            dramctrl_kernel::tick::to_ns(self.duration) / 1e6,
        );
        r.scalar("l1_hit_rate", self.l1_hit_rate);
        r.scalar("llc_hit_rate", self.llc_hit_rate);
        r.scalar(
            "llc_miss_lat_ns",
            dramctrl_kernel::tick::to_ns(self.llc_miss_lat.mean() as Tick),
        );
        r
    }
}

/// A multicore system bound to a controller.
#[derive(Debug)]
pub struct System<C: Controller> {
    cfg: SystemConfig,
    ctrl: C,
    cores: Vec<CoreState>,
    l1: Vec<CacheArray>,
    llc: CacheArray,
    events: EventQueue<SysEv>,
    outstanding: HashMap<u64, Fill>,
    wb_queue: VecDeque<u64>,
    llc_miss_lat: Average,
    resp_buf: Vec<MemResponse>,
    next_req_id: u64,
    prefetches_issued: u64,
    /// DRAM statistics at the start of the region of interest.
    roi_dram_base: Option<(Tick, CommonStats)>,
}

impl<C: Controller> System<C> {
    /// Builds a system with one core per workload profile, each in its own
    /// address region sized to its footprint.
    ///
    /// # Errors
    /// Returns a message if the configuration is inconsistent.
    pub fn new(
        cfg: SystemConfig,
        ctrl: C,
        profiles: &[WorkloadProfile],
        seed: u64,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if profiles.is_empty() {
            return Err("at least one core/profile required".into());
        }
        let line = cfg.l1.line;
        let mut base = 0u64;
        let mut cores = Vec::new();
        let mut events = EventQueue::new();
        for (i, &p) in profiles.iter().enumerate() {
            let mut stream = AccessStream::new(p, base, line, seed.wrapping_add(i as u64));
            base += p.footprint.next_power_of_two();
            let cur = stream.next_ref();
            cores.push(CoreState {
                stream,
                cur,
                insts_done: 0,
                outstanding_loads: 0,
                blocked: Blocked::No,
                warm_at: None,
                finish: None,
            });
            // Stagger the first issues so cores do not run in lockstep.
            events.schedule(i as Tick * 100, SysEv::Issue(i));
        }
        Ok(Self {
            l1: profiles.iter().map(|_| CacheArray::new(cfg.l1)).collect(),
            llc: CacheArray::new(cfg.llc),
            cfg,
            ctrl,
            cores,
            events,
            outstanding: HashMap::new(),
            wb_queue: VecDeque::new(),
            llc_miss_lat: Average::new(),
            resp_buf: Vec::new(),
            next_req_id: 0,
            prefetches_issued: 0,
            roi_dram_base: None,
        })
    }

    /// Access to the controller (e.g. for reports or power).
    pub fn controller(&self) -> &C {
        &self.ctrl
    }

    /// Mutable access to the controller.
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.ctrl
    }

    fn line_of(&self, addr: u64) -> u64 {
        self.llc.geometry().line_addr(addr)
    }

    fn sched(&mut self, at: Tick, ev: SysEv) {
        self.events.schedule(at.max(self.events.now()), ev);
    }

    /// Runs all cores to their instruction targets and returns the report.
    pub fn run(&mut self) -> SystemReport {
        loop {
            if self.cores.iter().all(|c| c.finish.is_some())
                && self.outstanding.is_empty()
                && self.wb_queue.is_empty()
            {
                break;
            }
            let te = self.events.peek_tick();
            let tc = self.ctrl.next_event();
            let next = match (te, tc) {
                (Some(a), Some(b)) => a.min(b),
                (a, b) => match a.or(b) {
                    Some(t) => t,
                    None => break,
                },
            };
            // Controller first: deliver any responses due at or before the
            // next step.
            let mut resp = std::mem::take(&mut self.resp_buf);
            self.ctrl.advance_to(next, &mut resp);
            for r in resp.drain(..) {
                self.handle_response(r);
            }
            self.resp_buf = resp;
            // Then the system events due at this tick.
            while let Some((t, ev)) = self.events.pop_until(next) {
                match ev {
                    SysEv::Issue(i) => self.handle_issue(i, t),
                }
            }
            self.drain_writebacks(next);
        }
        self.finish_report()
    }

    fn handle_issue(&mut self, i: usize, t: Tick) {
        if self.cores[i].finish.is_some() {
            return;
        }
        self.cores[i].blocked = Blocked::No;
        let access = self.cores[i].cur;
        let line = self.line_of(access.addr);

        // L1 lookup.
        if self.l1[i].access(access.addr, access.is_write) {
            let lat = if access.is_write { 0 } else { self.cfg.l1_lat };
            self.advance_core(i, t + lat);
            return;
        }
        // LLC lookup (hit latency charged on the return path).
        if self.llc.access(access.addr, false) {
            self.fill_l1(i, line, access.is_write);
            let lat = if access.is_write {
                0
            } else {
                self.cfg.l1_lat + self.cfg.llc_lat
            };
            self.advance_core(i, t + lat);
            return;
        }
        // LLC miss: need a DRAM line fill.
        if let Some(fill) = self.outstanding.get_mut(&line) {
            fill.waiters.push((i, !access.is_write));
            fill.dirty |= access.is_write;
            self.after_miss_sent(i, t, access.is_write);
            return;
        }
        if self.outstanding.len() >= self.cfg.llc_mshrs {
            self.cores[i].blocked = Blocked::Mshr;
            return; // woken by the next fill completion
        }
        let id = ReqId(self.next_req_id);
        self.next_req_id += 1;
        let req = MemRequest::read(id, line, self.cfg.llc.line).with_source(i as u16);
        match self.ctrl.try_send(req, t) {
            Ok(()) => {
                self.outstanding.insert(
                    line,
                    Fill {
                        waiters: vec![(i, !access.is_write)],
                        issued: t,
                        dirty: access.is_write,
                        prefetch: false,
                    },
                );
                self.issue_prefetches(line, t);
                self.after_miss_sent(i, t, access.is_write);
            }
            Err(_) => {
                // Controller backpressure behaves like MSHR exhaustion.
                self.cores[i].blocked = Blocked::Mshr;
            }
        }
    }

    /// Core bookkeeping after its miss is (or was already) in flight.
    fn after_miss_sent(&mut self, i: usize, t: Tick, is_write: bool) {
        if is_write {
            // Stores retire through the store buffer without blocking.
            self.advance_core(i, t);
            return;
        }
        let core = &mut self.cores[i];
        core.outstanding_loads += 1;
        if core.outstanding_loads <= self.cfg.core.max_outstanding {
            // Hit-under-miss: keep executing.
            self.advance_core(i, t);
        } else {
            core.blocked = Blocked::LoadLimit;
        }
    }

    /// Retires the current access at `t`, draws the next reference and
    /// schedules the next issue.
    fn advance_core(&mut self, i: usize, t: Tick) {
        let target = self.cfg.target_insts;
        let cycle = self.cfg.core.clock.period();
        let ipc = self.cfg.core.peak_ipc;
        let core = &mut self.cores[i];
        core.insts_done += 1;
        if self.cfg.warmup_insts > 0
            && core.warm_at.is_none()
            && core.insts_done >= self.cfg.warmup_insts
        {
            core.warm_at = Some(t);
            if self.cores.iter().all(|c| c.warm_at.is_some()) && self.roi_dram_base.is_none() {
                // All cores warmed up: the region of interest begins.
                self.roi_dram_base = Some((t, self.ctrl.common_stats()));
                self.llc_miss_lat.reset();
            }
            let core = &mut self.cores[i];
            let _ = core;
        }
        let core = &mut self.cores[i];
        if core.insts_done >= target {
            core.finish = Some(t);
            return;
        }
        let next = core.stream.next_ref();
        core.insts_done += u64::from(next.gap_insts);
        core.cur = next;
        let gap_time = (f64::from(next.gap_insts) / ipc * cycle as f64) as Tick;
        self.sched(t + gap_time, SysEv::Issue(i));
    }

    fn handle_response(&mut self, resp: MemResponse) {
        if resp.cmd.is_write() {
            return; // write-back acknowledgement
        }
        let line = resp.addr;
        let fill = self
            .outstanding
            .remove(&line)
            .expect("fill response for unknown line");
        if !fill.prefetch {
            self.llc_miss_lat
                .record((resp.ready_at - fill.issued) as f64);
        }
        if let Some(victim) = self.llc.fill(line, fill.dirty) {
            if victim.dirty {
                self.wb_queue.push_back(victim.addr);
            }
        }
        let return_lat = self.cfg.llc_lat + self.cfg.l1_lat;
        for (core_idx, is_load) in fill.waiters {
            self.fill_l1(core_idx, line, !is_load);
            let core = &mut self.cores[core_idx];
            if is_load {
                core.outstanding_loads = core.outstanding_loads.saturating_sub(1);
            }
            if core.blocked == Blocked::LoadLimit
                && core.outstanding_loads < self.cfg.core.max_outstanding
            {
                core.blocked = Blocked::No;
                self.advance_core(core_idx, resp.ready_at + return_lat);
            }
        }
        // A completed fill frees an MSHR: retry cores blocked on one.
        for i in 0..self.cores.len() {
            if self.cores[i].blocked == Blocked::Mshr {
                self.sched(resp.ready_at, SysEv::Issue(i));
            }
        }
    }

    /// Issues next-N-line prefetches into the LLC after a demand miss.
    fn issue_prefetches(&mut self, demand_line: u64, t: Tick) {
        let line_bytes = u64::from(self.cfg.llc.line);
        for d in 1..=u64::from(self.cfg.prefetch_degree) {
            let line = demand_line + d * line_bytes;
            if self.llc.contains(line)
                || self.outstanding.contains_key(&line)
                || self.outstanding.len() >= self.cfg.llc_mshrs
            {
                continue;
            }
            let id = ReqId(self.next_req_id);
            let req = MemRequest::read(id, line, self.cfg.llc.line);
            if self.ctrl.try_send(req, t).is_ok() {
                self.next_req_id += 1;
                self.prefetches_issued += 1;
                self.outstanding.insert(
                    line,
                    Fill {
                        waiters: Vec::new(),
                        issued: t,
                        dirty: false,
                        prefetch: true,
                    },
                );
            }
        }
    }

    /// Inserts `line` into core `i`'s L1, spilling dirty victims into the
    /// LLC (and onwards to the write-back queue).
    fn fill_l1(&mut self, i: usize, line: u64, dirty: bool) {
        if let Some(victim) = self.l1[i].fill(line, dirty) {
            if victim.dirty && !self.llc.access(victim.addr, true) {
                if let Some(v2) = self.llc.fill(victim.addr, true) {
                    if v2.dirty {
                        self.wb_queue.push_back(v2.addr);
                    }
                }
            }
        }
    }

    fn drain_writebacks(&mut self, t: Tick) {
        while let Some(&line) = self.wb_queue.front() {
            let id = ReqId(self.next_req_id);
            let req = MemRequest::write(id, line, self.cfg.llc.line);
            match self.ctrl.try_send(req, t) {
                Ok(()) => {
                    self.next_req_id += 1;
                    self.wb_queue.pop_front();
                }
                Err(_) => break, // retry on the next iteration
            }
        }
    }

    fn finish_report(&mut self) -> SystemReport {
        let mut out = Vec::new();
        let dram_end = self.ctrl.drain(&mut out);
        let duration = self
            .cores
            .iter()
            .map(|c| c.finish.unwrap_or(dram_end))
            .max()
            .unwrap_or(dram_end);
        let cycle = self.cfg.core.clock.period() as f64;
        // IPC over the region of interest: each core's post-warm-up
        // instructions over its post-warm-up time.
        let per_core_ipc: Vec<f64> = self
            .cores
            .iter()
            .map(|c| {
                let start = c.warm_at.unwrap_or(0);
                let end = c.finish.unwrap_or(duration).max(start + 1);
                let insts = if c.warm_at.is_some() {
                    c.insts_done.saturating_sub(self.cfg.warmup_insts)
                } else {
                    c.insts_done
                };
                insts as f64 / ((end - start) as f64 / cycle)
            })
            .collect();
        let ipc = per_core_ipc.iter().sum::<f64>() / per_core_ipc.len() as f64;
        let (l1_hits, l1_total): (u64, u64) = self.l1.iter().fold((0, 0), |(h, t), c| {
            (h + c.hits(), t + c.hits() + c.misses())
        });
        SystemReport {
            duration,
            insts: self.cores.iter().map(|c| c.insts_done).sum(),
            ipc,
            per_core_ipc,
            l1_hit_rate: if l1_total == 0 {
                0.0
            } else {
                l1_hits as f64 / l1_total as f64
            },
            llc_hit_rate: self.llc.hit_rate(),
            llc_miss_lat: self.llc_miss_lat.clone(),
            dram: match &self.roi_dram_base {
                Some((_, base)) => self.ctrl.common_stats().since(base),
                None => self.ctrl.common_stats(),
            },
            roi_duration: duration - self.roi_dram_base.as_ref().map_or(0, |(t, _)| *t),
            prefetches: self.prefetches_issued,
        }
    }
}
