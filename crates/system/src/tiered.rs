//! Tiered (heterogeneous) memory.
//!
//! Paper Section II-F: "The modularity and configurability makes it
//! possible to model multi-channel UMA and NUMA configurations, or
//! emerging heterogeneous memory systems. For example, a tiered memory is
//! easily created by instantiating a WideIO and LPDDR3 DRAM". A
//! [`TieredMemory`] splits the physical address space at a boundary: the
//! near tier (e.g. stacked WideIO) serves addresses below it, the far
//! tier (e.g. LPDDR3) the rest. Both tiers are arbitrary
//! [`Controller`]s — single channels, crossbars, or even further tiers.

use dramctrl_kernel::Tick;
use dramctrl_mem::{
    ActivityStats, CommonStats, Controller, MemCmd, MemRequest, MemResponse, MemSpec, Rejected,
};
use dramctrl_stats::Report;

/// Two memory tiers split at an address boundary.
///
/// # Example
/// ```
/// use dramctrl::{CtrlConfig, DramCtrl};
/// use dramctrl_mem::{presets, Controller, MemRequest, ReqId};
/// use dramctrl_system::TieredMemory;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let near = DramCtrl::new(CtrlConfig::new(presets::wideio_200_x128()))?;
/// let far = DramCtrl::new(CtrlConfig::new(presets::lpddr3_1600_x32()))?;
/// let mut mem = TieredMemory::new(near, far, 256 << 20); // 256 MB near tier
/// mem.try_send(MemRequest::read(ReqId(0), 0x1000, 64), 0)?; // near
/// mem.try_send(MemRequest::read(ReqId(1), 512 << 20, 64), 0)?; // far
/// let mut out = Vec::new();
/// mem.drain(&mut out);
/// assert_eq!(out.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TieredMemory<N: Controller, F: Controller> {
    near: N,
    far: F,
    boundary: u64,
}

impl<N: Controller, F: Controller> TieredMemory<N, F> {
    /// Creates a tiered memory: addresses below `boundary` go to `near`,
    /// the rest to `far` (rebased to the far tier's zero).
    ///
    /// # Panics
    /// Panics if `boundary` is zero.
    pub fn new(near: N, far: F, boundary: u64) -> Self {
        assert!(boundary > 0, "near tier must cover some address space");
        Self {
            near,
            far,
            boundary,
        }
    }

    /// The near tier.
    pub fn near(&self) -> &N {
        &self.near
    }

    /// The far tier.
    pub fn far(&self) -> &F {
        &self.far
    }

    /// The near/far address boundary.
    pub fn boundary(&self) -> u64 {
        self.boundary
    }

    fn is_near(&self, addr: u64) -> bool {
        addr < self.boundary
    }
}

impl<N: Controller, F: Controller> Controller for TieredMemory<N, F> {
    fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), Rejected> {
        if self.is_near(req.addr) {
            self.near.try_send(req, now)
        } else {
            // Rebase so the far tier sees its own zero-based space; the
            // response still carries the original request id.
            let rebased = MemRequest {
                addr: req.addr - self.boundary,
                ..req
            };
            self.far.try_send(rebased, now)
        }
    }

    fn can_accept(&self, cmd: MemCmd, addr: u64, size: u32) -> bool {
        if self.is_near(addr) {
            self.near.can_accept(cmd, addr, size)
        } else {
            self.far.can_accept(cmd, addr - self.boundary, size)
        }
    }

    fn next_event(&self) -> Option<Tick> {
        match (self.near.next_event(), self.far.next_event()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>) {
        let before = out.len();
        self.near.advance_to(limit, out);
        let near_end = out.len();
        self.far.advance_to(limit, out);
        // Restore the original addresses of far-tier responses.
        for resp in &mut out[near_end..] {
            resp.addr += self.boundary;
        }
        out[before..].sort_by_key(|r| r.ready_at);
    }

    fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick {
        let before = out.len();
        let a = self.near.drain(out);
        let near_end = out.len();
        let b = self.far.drain(out);
        for resp in &mut out[near_end..] {
            resp.addr += self.boundary;
        }
        out[before..].sort_by_key(|r| r.ready_at);
        a.max(b)
    }

    fn is_idle(&self) -> bool {
        self.near.is_idle() && self.far.is_idle()
    }

    /// The near tier's specification (the tiers may differ; use
    /// [`TieredMemory::near`]/[`TieredMemory::far`] for per-tier specs).
    fn spec(&self) -> &MemSpec {
        self.near.spec()
    }

    fn common_stats(&self) -> CommonStats {
        let (n, f) = (self.near.common_stats(), self.far.common_stats());
        CommonStats {
            reads_accepted: n.reads_accepted + f.reads_accepted,
            writes_accepted: n.writes_accepted + f.writes_accepted,
            rd_bursts: n.rd_bursts + f.rd_bursts,
            wr_bursts: n.wr_bursts + f.wr_bursts,
            bytes_read: n.bytes_read + f.bytes_read,
            bytes_written: n.bytes_written + f.bytes_written,
            row_hits: n.row_hits + f.row_hits,
            activates: n.activates + f.activates,
            bus_busy: n.bus_busy + f.bus_busy,
            read_lat_sum: n.read_lat_sum + f.read_lat_sum,
        }
    }

    fn activity(&mut self, now: Tick) -> ActivityStats {
        let (n, f) = (self.near.activity(now), self.far.activity(now));
        ActivityStats {
            sim_time: now,
            activates: n.activates + f.activates,
            precharges: n.precharges + f.precharges,
            rd_bursts: n.rd_bursts + f.rd_bursts,
            wr_bursts: n.wr_bursts + f.wr_bursts,
            refreshes: n.refreshes + f.refreshes,
            time_all_banks_precharged: n.time_all_banks_precharged + f.time_all_banks_precharged,
            time_powered_down: n.time_powered_down + f.time_powered_down,
            time_self_refresh: n.time_self_refresh + f.time_self_refresh,
            ranks: n.ranks + f.ranks,
        }
    }

    fn report(&self, prefix: &str, now: Tick) -> Report {
        let mut r = Report::new(prefix);
        r.counter("boundary", self.boundary);
        r.nest(&self.near.report("near", now));
        r.nest(&self.far.report("far", now));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl::{CtrlConfig, DramCtrl};
    use dramctrl_mem::{presets, ReqId};

    fn tiers() -> TieredMemory<DramCtrl, DramCtrl> {
        let mk = |spec| {
            let mut cfg = CtrlConfig::new(spec);
            cfg.spec.timing.t_refi = 0;
            DramCtrl::new(cfg).unwrap()
        };
        TieredMemory::new(
            mk(presets::wideio_200_x128()),
            mk(presets::lpddr3_1600_x32()),
            256 << 20,
        )
    }

    #[test]
    fn routes_by_boundary() {
        let mut m = tiers();
        m.try_send(MemRequest::read(ReqId(0), 0x40, 64), 0).unwrap();
        m.try_send(MemRequest::read(ReqId(1), (256 << 20) + 0x40, 64), 0)
            .unwrap();
        let mut out = Vec::new();
        m.drain(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(m.near().common_stats().rd_bursts, 1);
        // LPDDR3 chops the 64 B line into two 32 B bursts.
        assert_eq!(m.far().common_stats().rd_bursts, 2);
    }

    #[test]
    fn far_responses_keep_original_addresses() {
        let mut m = tiers();
        let far_addr = (256 << 20) + 0x80;
        m.try_send(MemRequest::read(ReqId(7), far_addr, 64), 0)
            .unwrap();
        let mut out = Vec::new();
        m.drain(&mut out);
        assert_eq!(out[0].addr, far_addr);
        assert_eq!(out[0].id, ReqId(7));
    }

    #[test]
    fn near_tier_is_faster_than_far_tier_for_single_reads() {
        let mut m = tiers();
        m.try_send(MemRequest::read(ReqId(0), 0x40, 64), 0).unwrap();
        m.try_send(MemRequest::read(ReqId(1), (256 << 20) + 0x40, 64), 0)
            .unwrap();
        let mut out = Vec::new();
        m.drain(&mut out);
        let near = out.iter().find(|r| r.id == ReqId(0)).unwrap();
        let far = out.iter().find(|r| r.id == ReqId(1)).unwrap();
        // WideIO: tRCD+tCL+tBURST = 18+18+20 = 56 ns;
        // LPDDR3 (2 bursts): 15+15+10 = 40 ns. The tiers keep their own
        // timing — here the "near" stacked tier is actually slower per
        // access but four of them provide the bandwidth (see fig9).
        assert_eq!(near.ready_at, 56_000);
        assert_eq!(far.ready_at, 40_000);
    }

    #[test]
    fn flow_control_is_per_tier() {
        let mk_small = |spec| {
            let mut cfg = CtrlConfig::new(spec);
            cfg.spec.timing.t_refi = 0;
            cfg.read_buffer_size = 1;
            DramCtrl::new(cfg).unwrap()
        };
        let mut m = TieredMemory::new(
            mk_small(presets::wideio_200_x128()),
            mk_small(presets::lpddr3_1600_x32()),
            256 << 20,
        );
        m.try_send(MemRequest::read(ReqId(0), 0, 64), 0).unwrap();
        // Near tier full; far tier still accepts.
        assert!(m.try_send(MemRequest::read(ReqId(1), 64, 64), 0).is_err());
        assert!(m.can_accept(MemCmd::Read, 300 << 20, 32));
    }

    #[test]
    fn aggregate_stats_sum_tiers() {
        let mut m = tiers();
        for i in 0..4u64 {
            m.try_send(MemRequest::read(ReqId(i), i * (128 << 20), 64), 0)
                .unwrap();
        }
        let mut out = Vec::new();
        let end = m.drain(&mut out);
        let s = m.common_stats();
        assert_eq!(s.reads_accepted, 4);
        assert_eq!(
            s.rd_bursts,
            m.near().common_stats().rd_bursts + m.far().common_stats().rd_bursts
        );
        let act = m.activity(end);
        assert_eq!(act.ranks, 2);
        assert!(act.activates >= 2);
    }

    #[test]
    #[should_panic(expected = "near tier")]
    fn zero_boundary_panics() {
        let m = tiers();
        let (n, f) = (m.near, m.far);
        let _ = TieredMemory::new(n, f, 0);
    }
}
