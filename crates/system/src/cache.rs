//! Set-associative cache state (tags, LRU, dirty bits).
//!
//! The array is purely functional state — the surrounding
//! [`System`](crate::System) adds timing, MSHRs and the write-back
//! traffic. Keeping the two separate makes the replacement behaviour unit
//! testable.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line: u32,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (checked in
    /// [`CacheArray::new`]).
    pub fn sets(&self) -> u64 {
        self.size / (u64::from(self.assoc) * u64::from(self.line))
    }

    /// Line-aligned base address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr / u64::from(self.line) * u64::from(self.line)
    }

    fn index(&self, addr: u64) -> usize {
        ((addr / u64::from(self.line)) % self.sets()) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / u64::from(self.line) / self.sets()
    }
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned address of the evicted line.
    pub addr: u64,
    /// Whether it must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
}

/// Tag array with true-LRU replacement and per-line dirty bits.
///
/// # Example
/// ```
/// use dramctrl_system::{CacheArray, CacheGeometry};
///
/// let mut c = CacheArray::new(CacheGeometry { size: 1024, assoc: 2, line: 64 });
/// assert!(!c.access(0x0, false)); // cold miss
/// c.fill(0x0, false);
/// assert!(c.access(0x0, false)); // hit
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geom: CacheGeometry,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if the geometry does not describe at least one set of at
    /// least one way, or size is not an exact multiple of `assoc * line`.
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(geom.line > 0 && geom.assoc > 0, "degenerate geometry");
        assert!(
            geom.size % (u64::from(geom.assoc) * u64::from(geom.line)) == 0,
            "size must be a multiple of assoc * line"
        );
        let sets = geom.sets();
        assert!(sets > 0, "cache must have at least one set");
        Self {
            geom,
            sets: (0..sets).map(|_| Vec::new()).collect(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Looks up `addr`; on a hit updates recency (and the dirty bit for
    /// writes) and returns `true`. A miss returns `false` and does *not*
    /// allocate — call [`fill`](Self::fill) once the line arrives.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.clock += 1;
        let (idx, tag) = (self.geom.index(addr), self.geom.tag(addr));
        if let Some(line) = self.sets[idx].iter_mut().find(|l| l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Whether `addr` is present, without touching recency or counters.
    pub fn contains(&self, addr: u64) -> bool {
        let (idx, tag) = (self.geom.index(addr), self.geom.tag(addr));
        self.sets[idx].iter().any(|l| l.tag == tag)
    }

    /// Inserts the line holding `addr` (marking it dirty for a write
    /// allocate), evicting the LRU way if the set is full.
    ///
    /// Filling an already-present line just updates its state.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Victim> {
        self.clock += 1;
        let (idx, tag) = (self.geom.index(addr), self.geom.tag(addr));
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= dirty;
            return None;
        }
        let clock = self.clock;
        if set.len() < self.geom.assoc as usize {
            set.push(Line {
                tag,
                dirty,
                lru: clock,
            });
            return None;
        }
        let lru_way = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let victim_line = &set[lru_way];
        let victim = Victim {
            addr: (victim_line.tag * self.geom.sets() + idx as u64) * u64::from(self.geom.line),
            dirty: victim_line.dirty,
        };
        set[lru_way] = Line {
            tag,
            dirty,
            lru: clock,
        };
        Some(victim)
    }

    /// Hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_kernel::rng::Rng;

    fn small() -> CacheArray {
        // 2 sets x 2 ways x 64 B.
        CacheArray::new(CacheGeometry {
            size: 256,
            assoc: 2,
            line: 64,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x40, false));
        c.fill(0x40, false);
        assert!(c.access(0x40, false));
        assert!(c.access(0x7f, false), "same line, different byte");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0x000, 0x100, 0x200... (2 sets, 64 B lines).
        c.fill(0x000, false);
        c.fill(0x100, false);
        c.access(0x000, false); // make 0x100 the LRU
        let v = c.fill(0x200, false).expect("set is full");
        assert_eq!(v.addr, 0x100);
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
    }

    #[test]
    fn dirty_bit_tracks_writes() {
        let mut c = small();
        c.fill(0x000, false);
        c.access(0x000, true); // write hit dirties the line
        c.fill(0x100, false);
        let v = c.fill(0x200, false).expect("evicts");
        assert!(v.dirty, "written line must be written back");
    }

    #[test]
    fn write_allocate_fill_is_dirty() {
        let mut c = small();
        c.fill(0x000, true);
        c.fill(0x100, false);
        c.access(0x100, false);
        let v = c.fill(0x200, false).unwrap();
        assert_eq!(v.addr, 0x000);
        assert!(v.dirty);
    }

    #[test]
    fn victim_address_reconstruction() {
        // 2 sets: line at 0x1C0 is set 1 (line index 7, 7 % 2 = 1).
        let mut c = small();
        c.fill(0x1c0, false);
        c.fill(0x0c0, false); // also set 1
        c.access(0x0c0, false);
        c.access(0x0c0, false);
        let v = c.fill(0x2c0, false).unwrap();
        assert_eq!(v.addr, 0x1c0);
    }

    #[test]
    fn refill_existing_line_never_evicts() {
        let mut c = small();
        c.fill(0x000, false);
        c.fill(0x100, false);
        assert_eq!(c.fill(0x000, true), None);
        // And the dirty bit merged in.
        c.access(0x100, false);
        let v = c.fill(0x200, false).unwrap();
        assert_eq!(v.addr, 0x000);
        assert!(v.dirty);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn bad_geometry_panics() {
        let _ = CacheArray::new(CacheGeometry {
            size: 100,
            assoc: 2,
            line: 64,
        });
    }

    /// The cache never holds more lines than its capacity, and a fill
    /// of a full set always reports a victim.
    #[test]
    fn capacity_invariant() {
        let mut rng = Rng::seed_from_u64(0x000C_AC4E_0001);
        for _ in 0..256 {
            let addrs: Vec<u64> = (0..rng.gen_range(1..300))
                .map(|_| rng.gen_range(0..1 << 14))
                .collect();
            let mut c = CacheArray::new(CacheGeometry {
                size: 1024,
                assoc: 4,
                line: 64,
            });
            let mut resident = std::collections::HashSet::new();
            for &a in &addrs {
                if !c.access(a, a % 3 == 0) {
                    let victim = c.fill(a, a % 3 == 0);
                    if let Some(v) = victim {
                        assert!(resident.remove(&c.geometry().line_addr(v.addr)));
                    }
                    resident.insert(c.geometry().line_addr(a));
                }
                assert!(resident.len() <= 16); // 1024/64
            }
            // Everything we believe resident really is.
            for &line in &resident {
                assert!(c.contains(line));
            }
        }
    }

    /// Hit rate of a repeated small working set approaches 1.
    #[test]
    fn locality_pays() {
        for reps in 2u32..20 {
            let mut c = CacheArray::new(CacheGeometry {
                size: 4096,
                assoc: 4,
                line: 64,
            });
            let lines: Vec<u64> = (0..8).map(|i| i * 64).collect();
            for _ in 0..reps {
                for &a in &lines {
                    if !c.access(a, false) {
                        c.fill(a, false);
                    }
                }
            }
            // After the cold pass everything hits.
            assert_eq!(c.misses(), 8);
        }
    }
}
