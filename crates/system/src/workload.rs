//! Synthetic workload profiles standing in for the paper's PARSEC runs.
//!
//! The paper's case studies (Section IV) run PARSEC benchmarks on gem5's
//! full-system OoO cores. We cannot boot Linux, but the property the paper
//! relies on is the *closed loop* between cores, caches and the DRAM
//! controller — not the exact instruction streams. Each
//! [`WorkloadProfile`] reproduces a benchmark's published memory
//! characteristics (footprint, spatial/temporal locality, read/write mix,
//! memory intensity, after Bienia et al.'s PARSEC characterisation),
//! scaled to simulation-friendly footprints; an [`AccessStream`] turns a
//! profile into a deterministic per-core address stream.

use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};

/// Memory behaviour of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-core working set in bytes.
    pub footprint: u64,
    /// Percentage of memory references that are reads.
    pub read_pct: u8,
    /// Average instructions between memory references (memory intensity;
    /// smaller = more intense).
    pub mem_ref_interval: u32,
    /// Average sequential run length in cache lines (spatial locality).
    pub seq_lines: u32,
    /// Fraction of the footprint that is "hot".
    pub hot_fraction: f64,
    /// Percentage of references that target the hot region (temporal
    /// locality).
    pub hot_pct: u8,
}

const MB: u64 = 1 << 20;

/// The canneal profile used by the paper's memory-sensitivity case study
/// (Section IV-B): a large working set with poor locality, read-dominated.
pub fn canneal() -> WorkloadProfile {
    WorkloadProfile {
        name: "canneal",
        footprint: 48 * MB,
        read_pct: 85,
        mem_ref_interval: 4,
        seq_lines: 1,
        hot_fraction: 0.05,
        hot_pct: 20,
    }
}

/// The eleven PARSEC workload profiles used for the model comparison
/// (paper Figure 8).
pub fn parsec() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile {
            name: "blackscholes",
            footprint: 2 * MB,
            read_pct: 75,
            mem_ref_interval: 6,
            seq_lines: 8,
            hot_fraction: 0.2,
            hot_pct: 80,
        },
        WorkloadProfile {
            name: "bodytrack",
            footprint: 8 * MB,
            read_pct: 80,
            mem_ref_interval: 5,
            seq_lines: 4,
            hot_fraction: 0.1,
            hot_pct: 60,
        },
        canneal(),
        WorkloadProfile {
            name: "dedup",
            footprint: 24 * MB,
            read_pct: 65,
            mem_ref_interval: 4,
            seq_lines: 6,
            hot_fraction: 0.1,
            hot_pct: 40,
        },
        WorkloadProfile {
            name: "facesim",
            footprint: 32 * MB,
            read_pct: 70,
            mem_ref_interval: 5,
            seq_lines: 12,
            hot_fraction: 0.15,
            hot_pct: 50,
        },
        WorkloadProfile {
            name: "ferret",
            footprint: 16 * MB,
            read_pct: 80,
            mem_ref_interval: 5,
            seq_lines: 4,
            hot_fraction: 0.2,
            hot_pct: 60,
        },
        WorkloadProfile {
            name: "fluidanimate",
            footprint: 16 * MB,
            read_pct: 70,
            mem_ref_interval: 5,
            seq_lines: 6,
            hot_fraction: 0.15,
            hot_pct: 55,
        },
        WorkloadProfile {
            name: "freqmine",
            footprint: 12 * MB,
            read_pct: 85,
            mem_ref_interval: 5,
            seq_lines: 3,
            hot_fraction: 0.25,
            hot_pct: 70,
        },
        WorkloadProfile {
            name: "streamcluster",
            footprint: 32 * MB,
            read_pct: 90,
            mem_ref_interval: 3,
            seq_lines: 16,
            hot_fraction: 0.02,
            hot_pct: 10,
        },
        WorkloadProfile {
            name: "swaptions",
            footprint: MB,
            read_pct: 75,
            mem_ref_interval: 7,
            seq_lines: 4,
            hot_fraction: 0.3,
            hot_pct: 85,
        },
        WorkloadProfile {
            name: "x264",
            footprint: 16 * MB,
            read_pct: 70,
            mem_ref_interval: 5,
            seq_lines: 10,
            hot_fraction: 0.1,
            hot_pct: 45,
        },
    ]
}

/// One memory reference produced by an [`AccessStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Store (true) or load.
    pub is_write: bool,
    /// Instructions executed since the previous reference.
    pub gap_insts: u32,
}

/// Deterministic address-stream generator for one core running a
/// [`WorkloadProfile`] in its own `[base, base + footprint)` region.
#[derive(Debug)]
pub struct AccessStream {
    profile: WorkloadProfile,
    base: u64,
    line: u64,
    rng: Rng,
    cursor: u64,
    seq_left: u32,
}

impl AccessStream {
    /// Creates a stream over `[base, base + profile.footprint)` with
    /// `line`-byte granularity, seeded deterministically.
    ///
    /// # Panics
    /// Panics if the footprint holds fewer than two lines or the hot
    /// fraction is outside `(0, 1]`.
    pub fn new(profile: WorkloadProfile, base: u64, line: u32, seed: u64) -> Self {
        assert!(
            profile.footprint / u64::from(line) >= 2,
            "footprint must hold at least two lines"
        );
        assert!(
            profile.hot_fraction > 0.0 && profile.hot_fraction <= 1.0,
            "hot fraction must be in (0, 1]"
        );
        assert!(profile.read_pct <= 100 && profile.hot_pct <= 100);
        Self {
            profile,
            base,
            line: u64::from(line),
            rng: Rng::seed_from_u64(seed),
            cursor: base,
            seq_left: 0,
        }
    }

    /// The workload profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Produces the next memory reference.
    pub fn next_ref(&mut self) -> MemRef {
        let p = self.profile;
        let lines = p.footprint / self.line;
        if self.seq_left > 0 {
            self.seq_left -= 1;
            self.cursor += self.line;
            if self.cursor >= self.base + p.footprint {
                self.cursor = self.base;
            }
        } else {
            // Start a new run: hot or cold region, geometric-ish length.
            let hot_lines = ((lines as f64 * p.hot_fraction) as u64).max(1);
            let line_idx = if self.rng.gen_range(0..100) < u64::from(p.hot_pct) {
                self.rng.gen_range(0..hot_lines)
            } else {
                self.rng.gen_range(0..lines)
            };
            self.cursor = self.base + line_idx * self.line;
            self.seq_left = if p.seq_lines <= 1 {
                0
            } else {
                self.rng.gen_range(0..2 * u64::from(p.seq_lines)) as u32
            };
        }
        let gap = if p.mem_ref_interval <= 1 {
            1
        } else {
            (self.rng.gen_range_inclusive(
                u64::from(p.mem_ref_interval / 2)..=u64::from(p.mem_ref_interval * 3 / 2),
            ) as u32)
                .max(1)
        };
        MemRef {
            addr: self.cursor,
            is_write: self.rng.gen_range(0..100) >= u64::from(p.read_pct),
            gap_insts: gap,
        }
    }
}

impl SnapState for AccessStream {
    /// Captures the stream's dynamic state: the RNG, the cursor and the
    /// remaining sequential-run length. The profile, base and line size
    /// are construction parameters and are not written.
    fn save_state(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u64(self.cursor);
        w.u32(self.seq_left);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.rng = Rng::from_state(state);
        let cursor = r.u64()?;
        if cursor < self.base || cursor >= self.base + self.profile.footprint {
            return Err(SnapError::Corrupt(format!(
                "stream cursor {cursor:#x} outside the workload region"
            )));
        }
        self.cursor = cursor;
        self.seq_left = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_sane() {
        let all = parsec();
        assert_eq!(all.len(), 11);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        for p in &all {
            assert!(p.read_pct <= 100 && p.hot_pct <= 100);
            assert!(p.footprint >= MB);
            assert!(p.mem_ref_interval >= 1);
        }
    }

    #[test]
    fn stream_stays_in_region() {
        let mut s = AccessStream::new(canneal(), 0x1000_0000, 64, 1);
        for _ in 0..10_000 {
            let r = s.next_ref();
            assert!(r.addr >= 0x1000_0000);
            assert!(r.addr < 0x1000_0000 + canneal().footprint);
            assert_eq!(r.addr % 64, 0);
            assert!(r.gap_insts >= 1);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let collect = |seed| {
            let mut s = AccessStream::new(canneal(), 0, 64, seed);
            (0..100).map(|_| s.next_ref()).collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn read_ratio_respected() {
        let mut s = AccessStream::new(canneal(), 0, 64, 2);
        let reads = (0..10_000).filter(|_| !s.next_ref().is_write).count();
        assert!((8_200..8_800).contains(&reads), "reads = {reads}");
    }

    #[test]
    fn streaming_profile_is_more_sequential() {
        let seq_score = |p: WorkloadProfile| {
            let mut s = AccessStream::new(p, 0, 64, 3);
            let mut prev = 0u64;
            let mut seq = 0;
            for _ in 0..5_000 {
                let r = s.next_ref();
                if r.addr == prev + 64 {
                    seq += 1;
                }
                prev = r.addr;
            }
            seq
        };
        let stream = parsec()
            .into_iter()
            .find(|p| p.name == "streamcluster")
            .unwrap();
        assert!(seq_score(stream) > 3 * seq_score(canneal()));
    }

    #[test]
    fn hot_region_concentrates_accesses() {
        let p = parsec()
            .into_iter()
            .find(|p| p.name == "swaptions")
            .unwrap();
        let mut s = AccessStream::new(p, 0, 64, 4);
        let hot_limit = (p.footprint as f64 * p.hot_fraction) as u64;
        let hot = (0..10_000)
            .filter(|_| s.next_ref().addr < hot_limit)
            .count();
        // 85% of runs start hot; sequential runs blur it somewhat.
        assert!(hot > 5_000, "hot accesses = {hot}");
    }

    #[test]
    #[should_panic(expected = "two lines")]
    fn tiny_footprint_panics() {
        let mut p = canneal();
        p.footprint = 64;
        let _ = AccessStream::new(p, 0, 64, 0);
    }
}
