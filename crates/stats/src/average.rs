/// Streaming mean/min/max of a series of samples.
///
/// # Example
/// ```
/// use dramctrl_stats::Average;
///
/// let mut a = Average::new();
/// a.record(1.0);
/// a.record(3.0);
/// assert_eq!(a.mean(), 2.0);
/// assert_eq!(a.min(), Some(1.0));
/// assert_eq!(a.max(), Some(3.0));
/// assert_eq!(a.count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Average {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Average {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds `n` identical samples.
    pub fn record_n(&mut self, v: f64, n: u64) {
        self.sum += v * n as f64;
        self.count += n;
        if n > 0 {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// The arithmetic mean; 0.0 when no samples have been recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Discards all samples.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &Average) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw accumulator state `(sum, count, min, max)` for
    /// checkpointing. The floats must be persisted bit-exactly (via
    /// `f64::to_bits`) so a restored accumulator renders byte-identical
    /// reports; this crate stays dependency-free, so serialisation itself
    /// lives with the caller.
    pub fn to_parts(&self) -> (f64, u64, f64, f64) {
        (self.sum, self.count, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`to_parts`](Self::to_parts) output.
    pub fn from_parts(sum: f64, count: u64, min: f64, max: f64) -> Self {
        Self {
            sum,
            count,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_average_is_zero() {
        let a = Average::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Average::new();
        let mut b = Average::new();
        a.record_n(5.0, 4);
        for _ in 0..4 {
            b.record(5.0);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut a = Average::new();
        a.record_n(5.0, 0);
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
    }

    #[test]
    fn merge_combines() {
        let mut a = Average::new();
        a.record(1.0);
        let mut b = Average::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
    }

    #[test]
    fn reset_clears() {
        let mut a = Average::new();
        a.record(42.0);
        a.reset();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
    }
}
