use std::fmt;

use crate::{Average, Histogram};

/// An ordered collection of named statistic values, in the spirit of gem5's
/// `stats.txt` dump.
///
/// Values keep their insertion order, names are prefixed with the report's
/// component name, and the [`fmt::Display`] implementation produces an
/// aligned, human-readable dump.
///
/// # Example
/// ```
/// use dramctrl_stats::Report;
///
/// let mut r = Report::new("ctrl0");
/// r.scalar("bus_util_pct", 89.5);
/// r.counter("num_reads", 1024);
/// let text = r.to_string();
/// assert!(text.contains("ctrl0.bus_util_pct"));
/// assert!(text.contains("1024"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Report {
    prefix: String,
    entries: Vec<(String, Value)>,
}

/// A single reported value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Scalar(f64),
    Text(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Counter(v) => write!(f, "{v}"),
            Value::Scalar(v) => write!(f, "{v:.6}"),
            Value::Text(v) => write!(f, "{v}"),
        }
    }
}

impl Report {
    /// Creates an empty report for the component called `prefix`.
    pub fn new(prefix: impl Into<String>) -> Self {
        Self {
            prefix: prefix.into(),
            entries: Vec::new(),
        }
    }

    /// The component prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Adds an integer counter.
    pub fn counter(&mut self, name: &str, v: u64) {
        self.entries.push((name.to_owned(), Value::Counter(v)));
    }

    /// Adds a floating-point scalar.
    pub fn scalar(&mut self, name: &str, v: f64) {
        self.entries.push((name.to_owned(), Value::Scalar(v)));
    }

    /// Adds a free-form text value.
    pub fn text(&mut self, name: &str, v: impl Into<String>) {
        self.entries.push((name.to_owned(), Value::Text(v.into())));
    }

    /// Adds the summary statistics of an [`Average`] under `name.{mean,count,min,max}`.
    pub fn average(&mut self, name: &str, a: &Average) {
        self.scalar(&format!("{name}.mean"), a.mean());
        self.counter(&format!("{name}.count"), a.count());
        if let (Some(min), Some(max)) = (a.min(), a.max()) {
            self.scalar(&format!("{name}.min"), min);
            self.scalar(&format!("{name}.max"), max);
        }
    }

    /// Adds the summary statistics of a [`Histogram`] under
    /// `name.{mean,stddev,count,underflow,overflow}`.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.scalar(&format!("{name}.mean"), h.mean());
        self.scalar(&format!("{name}.stddev"), h.stddev());
        self.counter(&format!("{name}.count"), h.count());
        self.counter(&format!("{name}.underflow"), h.underflow());
        self.counter(&format!("{name}.overflow"), h.overflow());
    }

    /// Appends all entries of `other`, namespaced under `other`'s prefix.
    pub fn nest(&mut self, other: &Report) {
        for (name, value) in &other.entries {
            self.entries
                .push((format!("{}.{}", other.prefix, name), value.clone()));
        }
    }

    /// Looks up a value by (unprefixed) name; scalars and counters are
    /// returned as `f64`.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| match v {
                Value::Counter(c) => Some(*c as f64),
                Value::Scalar(s) => Some(*s),
                Value::Text(_) => None,
            })
    }

    /// Iterates over `(name, formatted_value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, String)> + '_ {
        self.entries
            .iter()
            .map(|(n, v)| (n.as_str(), v.to_string()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report contains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Machine-readable JSON rendering with a stable schema:
    ///
    /// ```json
    /// {"prefix":"ctrl","entries":[
    ///   {"name":"reads_accepted","type":"counter","value":1024},
    ///   {"name":"bus_util","type":"scalar","value":0.895},
    ///   {"name":"device","type":"text","value":"DDR3-1333"}]}
    /// ```
    ///
    /// Entries keep their insertion order (the same order as the text
    /// dump), counters stay integers, scalars use shortest round-trip
    /// formatting (non-finite values become `null`), so equal reports
    /// always serialise byte-identically — campaign reports, CLI runs and
    /// the differential harness all share this one schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.entries.len() * 32);
        out.push_str("{\"prefix\":");
        out.push_str(&json_str(&self.prefix));
        out.push_str(",\"entries\":[");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            out.push_str(&json_str(name));
            match value {
                Value::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                Value::Scalar(v) => {
                    out.push_str(",\"type\":\"scalar\",\"value\":");
                    out.push_str(&json_f64(*v));
                }
                Value::Text(v) => {
                    out.push_str(",\"type\":\"text\",\"value\":");
                    out.push_str(&json_str(v));
                }
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

/// JSON string literal with the required escapes (kept local so the stats
/// crate stays dependency-free).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest round-trip JSON number; non-finite becomes `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .entries
            .iter()
            .map(|(n, _)| self.prefix.len() + 1 + n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.entries {
            writeln!(
                f,
                "{:<width$}  {}",
                format!("{}.{}", self.prefix, name),
                value,
                width = width
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_preserved() {
        let mut r = Report::new("c");
        r.counter("z", 1);
        r.counter("a", 2);
        let names: Vec<_> = r.iter().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["z", "a"]);
    }

    #[test]
    fn get_returns_numeric_values() {
        let mut r = Report::new("c");
        r.counter("n", 7);
        r.scalar("x", 1.5);
        r.text("t", "hello");
        assert_eq!(r.get("n"), Some(7.0));
        assert_eq!(r.get("x"), Some(1.5));
        assert_eq!(r.get("t"), None);
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn nest_namespaces_children() {
        let mut child = Report::new("bank0");
        child.counter("acts", 3);
        let mut parent = Report::new("ctrl");
        parent.nest(&child);
        assert_eq!(parent.get("bank0.acts"), Some(3.0));
        assert!(parent.to_string().contains("ctrl.bank0.acts"));
    }

    #[test]
    fn histogram_summary_entries() {
        let mut h = Histogram::new(0, 100, 10);
        h.record(10);
        h.record(20);
        let mut r = Report::new("c");
        r.histogram("lat", &h);
        assert_eq!(r.get("lat.count"), Some(2.0));
        assert_eq!(r.get("lat.mean"), Some(15.0));
    }

    #[test]
    fn json_schema_is_stable_and_valid() {
        let mut r = Report::new("ctrl");
        r.counter("reads", 1024);
        r.scalar("util", 0.5);
        r.scalar("bad", f64::NAN);
        r.text("device", "DDR3 \"x64\"");
        let json = r.to_json();
        dramctrl_obs::json::validate(&json).expect("valid JSON");
        assert!(json.starts_with("{\"prefix\":\"ctrl\",\"entries\":["));
        assert!(json.contains("{\"name\":\"reads\",\"type\":\"counter\",\"value\":1024}"));
        assert!(json.contains("{\"name\":\"util\",\"type\":\"scalar\",\"value\":0.5}"));
        assert!(json.contains("{\"name\":\"bad\",\"type\":\"scalar\",\"value\":null}"));
        assert!(
            json.contains("{\"name\":\"device\",\"type\":\"text\",\"value\":\"DDR3 \\\"x64\\\"\"}")
        );
        // Equal reports serialise byte-identically.
        assert_eq!(json, r.clone().to_json());
        // Empty reports are still valid documents.
        dramctrl_obs::json::validate(&Report::new("empty").to_json()).unwrap();
    }

    #[test]
    fn display_is_aligned_and_nonempty() {
        let mut r = Report::new("c");
        r.counter("a", 1);
        r.counter("long_name", 2);
        let s = r.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // Both value columns start at the same offset.
        let col = |l: &str| l.rfind("  ").unwrap();
        assert_eq!(col(lines[0]), col(lines[1]));
    }
}
