//! A minimal aligned markdown/CSV table printer.
//!
//! Used by the figure-regeneration binaries in `dramctrl-bench` and by the
//! campaign engine's report rendering. Deliberately tiny: headers, rows,
//! aligned markdown or CSV out.

/// A minimal aligned markdown table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = width[i]))
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        let mut out = fmt_row(&self.header) + "\n";
        let dashes: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out += &format!("| {} |\n", dashes.join(" | "));
        for row in &self.rows {
            out += &(fmt_row(row) + "\n");
        }
        out
    }

    /// Renders the table as CSV (for plotting scripts).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            let cells: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out += &(cells.join(",") + "\n");
        }
        out
    }

    /// Prints the rendered table to stdout — as CSV when the process was
    /// invoked with a `--csv` argument, aligned markdown otherwise.
    pub fn print(&self) {
        if std::env::args().any(|a| a == "--csv") {
            print!("{}", self.render_csv());
        } else {
            print!("{}", self.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("long-header"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(["a", "b,comma"]);
        t.row(["1", "x\"y"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,\"b,comma\"\n1,\"x\"\"y\"\n");
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
