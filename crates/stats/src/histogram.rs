/// A fixed-range linear histogram of `u64` samples with under/overflow
/// buckets, used for latency distributions (paper Figures 6 and 7).
///
/// The range `[min, max)` is split into `buckets` equal-width bins. Samples
/// below `min` land in the underflow bucket, samples at or above `max` in the
/// overflow bucket. Mean and standard deviation are computed from the exact
/// samples (not bucket midpoints).
///
/// # Example
/// ```
/// use dramctrl_stats::Histogram;
///
/// let mut h = Histogram::new(0, 100, 10); // 10 ns-wide buckets over [0, 100)
/// h.record(5);
/// h.record(15);
/// h.record(15);
/// h.record(250); // overflow
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: u64,
    max: u64,
    width: u64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    sum: f64,
    sum_sq: f64,
    count: u64,
    sample_min: u64,
    sample_max: u64,
}

impl Histogram {
    /// Creates a histogram over `[min, max)` with `buckets` equal bins.
    ///
    /// # Panics
    /// Panics if `max <= min`, `buckets == 0`, or the range does not divide
    /// evenly into `buckets` bins.
    pub fn new(min: u64, max: u64, buckets: usize) -> Self {
        assert!(max > min, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let range = max - min;
        assert!(
            range % buckets as u64 == 0,
            "range {range} must divide evenly into {buckets} buckets"
        );
        Self {
            min,
            max,
            width: range / buckets as u64,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            sum: 0.0,
            sum_sq: 0.0,
            count: 0,
            sample_min: u64::MAX,
            sample_max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if v < self.min {
            self.underflow += 1;
        } else if v >= self.max {
            self.overflow += 1;
        } else {
            let idx = ((v - self.min) / self.width) as usize;
            self.buckets[idx] += 1;
        }
        self.sum += v as f64;
        self.sum_sq += (v as f64) * (v as f64);
        self.count += 1;
        self.sample_min = self.sample_min.min(v);
        self.sample_max = self.sample_max.max(v);
    }

    /// Total number of recorded samples (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of samples in bucket `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.buckets[idx]
    }

    /// The `[lo, hi)` value range of bucket `idx`.
    pub fn bucket_range(&self, idx: usize) -> (u64, u64) {
        let lo = self.min + idx as u64 * self.width;
        (lo, lo + self.width)
    }

    /// Number of buckets (excluding under/overflow).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact mean of all samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact population standard deviation; 0.0 when empty.
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let var = (self.sum_sq / n) - (self.sum / n).powi(2);
        var.max(0.0).sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn sample_min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.sample_min)
    }

    /// Largest sample, or `None` when empty.
    pub fn sample_max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.sample_max)
    }

    /// Approximate p-quantile (0.0..=1.0) from bucket boundaries: returns
    /// the upper edge of the bucket in which the quantile falls. Under- and
    /// overflow samples are counted at the range edges.
    ///
    /// Returns `None` when the histogram is empty.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.min);
        }
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_range(idx).1);
            }
        }
        Some(self.max)
    }

    /// Iterates over `(bucket_low, bucket_high, count)` for all buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bucket_range(i).0, self.bucket_range(i).1, c))
    }

    /// Counts the local maxima of the bucketed distribution after collapsing
    /// runs of equal counts; used by tests to detect the bimodal read-latency
    /// distribution of paper Figure 7. Empty buckets separate modes.
    pub fn modes(&self) -> usize {
        // Split into contiguous non-zero segments (gaps separate modes) and
        // count rising-to-falling direction changes within each segment.
        let mut peaks = 0;
        let mut rising = false;
        let mut prev = 0u64;
        for &c in &self.buckets {
            if c == 0 {
                if rising {
                    // The segment ended while still climbing (or on a
                    // plateau): its summit is a peak.
                    peaks += 1;
                }
                rising = false;
                prev = 0;
                continue;
            }
            if c < prev && rising {
                peaks += 1;
                rising = false;
            } else if c > prev {
                rising = true;
            }
            prev = c;
        }
        if rising {
            peaks += 1;
        }
        peaks
    }

    /// Folds another histogram with the identical bucket configuration
    /// into this one (e.g. to combine per-channel latency distributions).
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min && self.max == other.max && self.width == other.width,
            "cannot merge histograms with different bucket configurations"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.count += other.count;
        self.sample_min = self.sample_min.min(other.sample_min);
        self.sample_max = self.sample_max.max(other.sample_max);
    }

    /// Discards all samples, keeping the bucket configuration.
    pub fn reset(&mut self) {
        let (min, max, n) = (self.min, self.max, self.buckets.len());
        *self = Self::new(min, max, n);
    }

    /// The complete raw state for checkpointing. The float fields must be
    /// persisted bit-exactly (`f64::to_bits`); this crate stays
    /// dependency-free, so serialisation lives with the caller.
    pub fn to_parts(&self) -> HistogramParts {
        HistogramParts {
            min: self.min,
            max: self.max,
            buckets: self.buckets.clone(),
            underflow: self.underflow,
            overflow: self.overflow,
            sum: self.sum,
            sum_sq: self.sum_sq,
            count: self.count,
            sample_min: self.sample_min,
            sample_max: self.sample_max,
        }
    }

    /// Rebuilds a histogram from [`to_parts`](Self::to_parts) output.
    ///
    /// # Errors
    /// Returns a message when the parts violate the constructor's
    /// invariants (empty range, zero buckets, uneven width).
    pub fn from_parts(p: HistogramParts) -> Result<Self, String> {
        if p.max <= p.min {
            return Err("histogram range must be non-empty".into());
        }
        if p.buckets.is_empty() {
            return Err("histogram needs at least one bucket".into());
        }
        let range = p.max - p.min;
        if range % p.buckets.len() as u64 != 0 {
            return Err(format!(
                "range {range} must divide evenly into {} buckets",
                p.buckets.len()
            ));
        }
        let width = range / p.buckets.len() as u64;
        Ok(Self {
            min: p.min,
            max: p.max,
            width,
            buckets: p.buckets,
            underflow: p.underflow,
            overflow: p.overflow,
            sum: p.sum,
            sum_sq: p.sum_sq,
            count: p.count,
            sample_min: p.sample_min,
            sample_max: p.sample_max,
        })
    }
}

/// The raw state of a [`Histogram`], produced by [`Histogram::to_parts`]
/// and consumed by [`Histogram::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramParts {
    /// Lower bound of the bucketed range (inclusive).
    pub min: u64,
    /// Upper bound of the bucketed range (exclusive).
    pub max: u64,
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
    /// Samples below the range.
    pub underflow: u64,
    /// Samples at or above the range.
    pub overflow: u64,
    /// Exact sum of all samples (bit-exact persistence required).
    pub sum: f64,
    /// Exact sum of squares (bit-exact persistence required).
    pub sum_sq: f64,
    /// Total samples recorded.
    pub count: u64,
    /// Smallest sample seen (`u64::MAX` when empty).
    pub sample_min: u64,
    /// Largest sample seen (`0` when empty).
    pub sample_max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal seeded LCG (Knuth MMIX constants) so this dependency-free
    /// crate can run randomised tests deterministically.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self, bound: u64) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (self.0 >> 33) % bound
        }
    }

    #[test]
    fn buckets_partition_range() {
        let h = Histogram::new(100, 200, 4);
        assert_eq!(h.bucket_range(0), (100, 125));
        assert_eq!(h.bucket_range(3), (175, 200));
    }

    #[test]
    fn boundary_values_bucket_correctly() {
        let mut h = Histogram::new(0, 100, 10);
        h.record(0); // first bucket
        h.record(9); // first bucket
        h.record(10); // second bucket
        h.record(99); // last bucket
        h.record(100); // overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(9), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn mean_and_stddev_are_exact() {
        let mut h = Histogram::new(0, 1000, 10);
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        assert_eq!(h.mean(), 5.0);
        assert!((h.stddev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(0, 100, 100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        assert!(h.quantile(0.01).unwrap() <= 2);
        assert_eq!(Histogram::new(0, 10, 10).quantile(0.5), None);
    }

    #[test]
    fn unimodal_and_bimodal_detection() {
        let mut uni = Histogram::new(0, 100, 10);
        for v in [41u64, 42, 45, 44, 43, 55, 52] {
            uni.record(v);
        }
        assert_eq!(uni.modes(), 1);

        let mut bi = Histogram::new(0, 100, 10);
        for v in [11u64, 12, 13, 12, 81, 82, 83, 82] {
            bi.record(v);
        }
        assert_eq!(bi.modes(), 2);
    }

    #[test]
    fn modes_of_empty_is_zero() {
        assert_eq!(Histogram::new(0, 10, 10).modes(), 0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new(0, 100, 10);
        let mut b = Histogram::new(0, 100, 10);
        for v in [5u64, 15, 200] {
            a.record(v);
        }
        for v in [15u64, 95] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.bucket_count(1), 2);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.sample_min(), Some(5));
        assert_eq!(a.sample_max(), Some(200));
        // Mean over all five samples.
        assert!((a.mean() - 66.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "different bucket configurations")]
    fn merge_rejects_mismatched_buckets() {
        let mut a = Histogram::new(0, 100, 10);
        let b = Histogram::new(0, 200, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "must divide evenly")]
    fn uneven_range_panics() {
        let _ = Histogram::new(0, 10, 3);
    }

    /// Every sample lands in exactly one bucket (or under/overflow).
    #[test]
    fn counts_conserved() {
        let mut rng = Lcg(0xB157_0001);
        for _ in 0..256 {
            let samples: Vec<u64> = (0..rng.next(500)).map(|_| rng.next(2_000)).collect();
            let mut h = Histogram::new(100, 1_100, 20);
            for &s in &samples {
                h.record(s);
            }
            let bucketed: u64 = (0..h.num_buckets()).map(|i| h.bucket_count(i)).sum();
            assert_eq!(
                bucketed + h.underflow() + h.overflow(),
                samples.len() as u64
            );
            assert_eq!(h.count(), samples.len() as u64);
        }
    }

    /// to_parts/from_parts is the identity, including on empty histograms.
    #[test]
    fn parts_round_trip() {
        let mut h = Histogram::new(100, 1_100, 20);
        for v in [50u64, 100, 555, 2_000] {
            h.record(v);
        }
        assert_eq!(Histogram::from_parts(h.to_parts()).unwrap(), h);
        let empty = Histogram::new(0, 10, 10);
        assert_eq!(Histogram::from_parts(empty.to_parts()).unwrap(), empty);
        // Invalid parts are rejected, not silently accepted.
        let mut bad = h.to_parts();
        bad.max = bad.min;
        assert!(Histogram::from_parts(bad).is_err());
    }

    /// The quantile function is monotonically non-decreasing in p.
    #[test]
    fn quantile_monotone() {
        let mut rng = Lcg(0x9_0417);
        for _ in 0..256 {
            let samples: Vec<u64> = (0..1 + rng.next(199)).map(|_| rng.next(1_000)).collect();
            let mut h = Histogram::new(0, 1_000, 50);
            for &s in &samples {
                h.record(s);
            }
            let qs: Vec<_> = (0..=10)
                .map(|i| h.quantile(i as f64 / 10.0).unwrap())
                .collect();
            assert!(qs.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
