//! Statistics framework for the `dramctrl` simulators.
//!
//! Loosely modelled on gem5's statistics package (which the paper's
//! controller reuses, Section II-E): simulation components accumulate
//! [`Average`]s and [`Histogram`]s while running, and emit a flat, ordered
//! [`Report`] of named values at the end of (or at arbitrary points during) a
//! simulation. Reports can be reset mid-run to measure a region of interest,
//! just like gem5's `reset stats` functionality.
//!
//! # Example
//!
//! ```
//! use dramctrl_stats::{Average, Histogram, Report};
//!
//! let mut lat = Histogram::new(0, 1_000, 10);
//! let mut avg = Average::new();
//! for v in [10u64, 20, 30] {
//!     lat.record(v);
//!     avg.record(v as f64);
//! }
//! assert_eq!(avg.mean(), 20.0);
//!
//! let mut report = Report::new("memctrl");
//! report.scalar("reads", 3.0);
//! report.histogram("read_latency", &lat);
//! assert!(report.to_string().contains("memctrl.reads"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod average;
mod histogram;
mod report;
mod table;

pub use average::Average;
pub use histogram::{Histogram, HistogramParts};
pub use report::Report;
pub use table::Table;
