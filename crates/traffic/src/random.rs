//! Uniformly random traffic.

use crate::{Pacer, TrafficGen};
use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::MemRequest;

/// Generates block-aligned requests at uniformly random addresses within a
/// range (paper Section III-A), defeating row-buffer locality.
#[derive(Debug)]
pub struct RandomGen {
    pacer: Pacer,
    start: u64,
    blocks: u64,
    block: u32,
    read_pct: u8,
    rng: Rng,
}

impl RandomGen {
    /// Creates a random generator over `[start, end)` issuing
    /// `block`-byte aligned requests, `read_pct`% reads, `period` ticks
    /// apart, for `count` requests, seeded with `seed`.
    ///
    /// # Panics
    /// Panics if the range holds no block or `read_pct > 100`.
    pub fn new(
        start: u64,
        end: u64,
        block: u32,
        read_pct: u8,
        period: Tick,
        count: u64,
        seed: u64,
    ) -> Self {
        assert!(block > 0, "block size must be non-zero");
        assert!(read_pct <= 100, "read percentage must be at most 100");
        let blocks = end.saturating_sub(start) / u64::from(block);
        assert!(blocks > 0, "range must hold at least one block");
        Self {
            pacer: Pacer::new(period, count),
            start,
            blocks,
            block,
            read_pct,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl SnapState for RandomGen {
    fn save_state(&self, w: &mut SnapWriter) {
        self.pacer.save_state(w);
        for word in self.rng.state() {
            w.u64(word);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pacer.restore_state(r)?;
        self.rng = Rng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        Ok(())
    }
}

impl TrafficGen for RandomGen {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let (tick, id) = self.pacer.take()?;
        let addr = self.start + self.rng.gen_range(0..self.blocks) * u64::from(self.block);
        let req = if self.rng.gen_range(0..100) < u64::from(self.read_pct) {
            MemRequest::read(id, addr, self.block)
        } else {
            MemRequest::write(id, addr, self.block)
        };
        Some((tick, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_in_range_and_aligned() {
        let mut g = RandomGen::new(0x1000, 0x9000, 64, 50, 5, 500, 3);
        for (_, r) in std::iter::from_fn(|| g.next_request()) {
            assert!(r.addr >= 0x1000 && r.addr + 64 <= 0x9000);
            assert_eq!(r.addr % 64, 0);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let collect = |seed| {
            let mut g = RandomGen::new(0, 1 << 20, 64, 50, 0, 100, seed);
            std::iter::from_fn(move || g.next_request())
                .map(|(_, r)| (r.addr, r.cmd.is_read()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn spreads_over_many_rows() {
        // Random traffic over 64 MB touches many distinct 8 KB rows.
        let mut g = RandomGen::new(0, 64 << 20, 64, 100, 0, 1_000, 1);
        let mut rows: Vec<u64> = std::iter::from_fn(|| g.next_request())
            .map(|(_, r)| r.addr / 8192)
            .collect();
        rows.sort_unstable();
        rows.dedup();
        assert!(rows.len() > 900, "only {} distinct rows", rows.len());
    }
}
