//! The DRAM-aware traffic generator (created as part of the paper,
//! Section III-A).

use crate::{Pacer, TrafficGen};
use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{AddrMapping, DramAddr, MemRequest, Organisation};

/// A generator that knows the DRAM's internal organisation — page size,
/// bank count and address mapping — and uses [`AddrMapping::encode`] to
/// construct addresses with an exact row-hit run length (`stride_bursts`)
/// spread over an exact number of banks (`banks_used`).
///
/// * `stride_bursts = 1` makes every access open a fresh row (0% hit
///   rate); `stride_bursts = bursts_per_row` walks whole pages (maximum
///   hit rate under an open-page policy).
/// * `banks_used` controls bank-level parallelism and exposes tRRD/tFAW.
/// * the read/write mix exposes tWTR and the write-switching scheme.
///
/// Groups of `stride_bursts` sequential bursts round-robin over the first
/// `banks_used` banks (across all ranks, rank-major); each visit to a bank
/// starts a fresh row so the first burst of a group always misses.
#[derive(Debug)]
pub struct DramAwareGen {
    pacer: Pacer,
    org: Organisation,
    mapping: AddrMapping,
    channels: u32,
    channel: u32,
    stride_bursts: u64,
    banks_used: u32,
    read_pct: u8,
    rng: Rng,
    bank_idx: u32,
    rows: Vec<u64>,
    seq: u64,
}

impl DramAwareGen {
    /// Creates a DRAM-aware generator.
    ///
    /// `stride_bursts` is clamped into `1..=bursts_per_row`; requests are
    /// one burst each and round-robin over `banks_used` banks
    /// (`1..=ranks*banks`), targeting `channel` of `channels`.
    ///
    /// # Panics
    /// Panics if `banks_used` is zero or exceeds the device's bank count,
    /// or `read_pct > 100`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        org: Organisation,
        mapping: AddrMapping,
        channels: u32,
        channel: u32,
        stride_bursts: u64,
        banks_used: u32,
        read_pct: u8,
        period: Tick,
        count: u64,
        seed: u64,
    ) -> Self {
        let total_banks = org.ranks * org.banks;
        assert!(
            banks_used >= 1 && banks_used <= total_banks,
            "banks_used must be in 1..={total_banks}"
        );
        assert!(read_pct <= 100, "read percentage must be at most 100");
        let stride_bursts = stride_bursts.clamp(1, org.bursts_per_row());
        Self {
            pacer: Pacer::new(period, count),
            org,
            mapping,
            channels,
            channel,
            stride_bursts,
            banks_used,
            read_pct,
            rng: Rng::seed_from_u64(seed),
            bank_idx: 0,
            rows: vec![0; banks_used as usize],
            seq: 0,
        }
    }

    /// The stride (row-hit run length) in bursts.
    pub fn stride_bursts(&self) -> u64 {
        self.stride_bursts
    }
}

impl SnapState for DramAwareGen {
    fn save_state(&self, w: &mut SnapWriter) {
        self.pacer.save_state(w);
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u32(self.bank_idx);
        w.usize(self.rows.len());
        for &row in &self.rows {
            w.u64(row);
        }
        w.u64(self.seq);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pacer.restore_state(r)?;
        self.rng = Rng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let bank_idx = r.u32()?;
        if bank_idx >= self.banks_used {
            return Err(SnapError::Corrupt(format!(
                "bank cursor {bank_idx} outside the {} banks used",
                self.banks_used
            )));
        }
        self.bank_idx = bank_idx;
        let n_rows = r.usize()?;
        if n_rows != self.rows.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot tracks {n_rows} banks, generator uses {}",
                self.rows.len()
            )));
        }
        for row in &mut self.rows {
            *row = r.u64()?;
        }
        let seq = r.u64()?;
        if seq >= self.stride_bursts {
            return Err(SnapError::Corrupt(format!(
                "stride cursor {seq} at or beyond stride {}",
                self.stride_bursts
            )));
        }
        self.seq = seq;
        Ok(())
    }
}

impl TrafficGen for DramAwareGen {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let (tick, id) = self.pacer.take()?;
        let flat = self.bank_idx;
        let (rank, bank) = (flat / self.org.banks, flat % self.org.banks);
        let row = self.rows[self.bank_idx as usize] % self.org.rows_per_bank();
        let addr = self.mapping.encode(
            &DramAddr {
                rank,
                bank,
                row,
                col: self.seq,
            },
            self.channel,
            &self.org,
            self.channels,
        );

        // Advance: next burst in the stride, or move to the next bank with
        // a fresh row.
        self.seq += 1;
        if self.seq == self.stride_bursts {
            self.seq = 0;
            self.rows[self.bank_idx as usize] += 1;
            self.bank_idx = (self.bank_idx + 1) % self.banks_used;
        }

        let size = self.org.burst_bytes() as u32;
        let req = if self.rng.gen_range(0..100) < u64::from(self.read_pct) {
            MemRequest::read(id, addr, size)
        } else {
            MemRequest::write(id, addr, size)
        };
        Some((tick, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::presets;

    fn gen_with(stride: u64, banks: u32, count: u64) -> DramAwareGen {
        DramAwareGen::new(
            presets::ddr3_1333_x64().org,
            AddrMapping::RoRaBaCoCh,
            1,
            0,
            stride,
            banks,
            100,
            0,
            count,
            1,
        )
    }

    fn decode_all(g: &mut DramAwareGen) -> Vec<DramAddr> {
        let org = presets::ddr3_1333_x64().org;
        std::iter::from_fn(|| g.next_request())
            .map(|(_, r)| AddrMapping::RoRaBaCoCh.decode(r.addr, &org, 1))
            .collect()
    }

    #[test]
    fn stride_one_never_repeats_a_row() {
        let mut g = gen_with(1, 1, 16);
        let das = decode_all(&mut g);
        assert!(das.iter().all(|d| d.bank == 0));
        let mut rows: Vec<_> = das.iter().map(|d| d.row).collect();
        rows.dedup();
        assert_eq!(rows.len(), 16, "every access opens a fresh row");
    }

    #[test]
    fn stride_runs_within_one_row() {
        let mut g = gen_with(4, 1, 12);
        let das = decode_all(&mut g);
        for group in das.chunks(4) {
            assert!(group.iter().all(|d| d.row == group[0].row));
            let cols: Vec<_> = group.iter().map(|d| d.col).collect();
            assert_eq!(cols, vec![0, 1, 2, 3]);
        }
        assert_ne!(das[0].row, das[4].row);
    }

    #[test]
    fn banks_round_robin() {
        let mut g = gen_with(2, 4, 16);
        let das = decode_all(&mut g);
        let banks: Vec<_> = das.iter().map(|d| d.bank).collect();
        assert_eq!(banks, vec![0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn stride_clamped_to_page() {
        let g = gen_with(10_000, 1, 1);
        assert_eq!(
            g.stride_bursts(),
            presets::ddr3_1333_x64().org.bursts_per_row()
        );
    }

    #[test]
    fn expected_hit_rate_from_stride() {
        // With stride S, (S-1)/S of accesses are row hits under open page.
        let mut g = gen_with(8, 2, 800);
        let das = decode_all(&mut g);
        let mut hits = 0;
        let mut last_row = [None; 8];
        for d in &das {
            if last_row[d.bank as usize] == Some(d.row) {
                hits += 1;
            }
            last_row[d.bank as usize] = Some(d.row);
        }
        assert_eq!(hits, 800 / 8 * 7);
    }

    #[test]
    #[should_panic(expected = "banks_used")]
    fn too_many_banks_panics() {
        let _ = gen_with(1, 99, 1);
    }
}
