//! Trace recording and replay.
//!
//! The text format is one request per line:
//!
//! ```text
//! # tick cmd addr size
//! 0 R 0x1000 64
//! 1500 W 0x2040 64
//! ```
//!
//! Ticks are picoseconds, addresses hexadecimal (with or without `0x`),
//! sizes bytes. Blank lines and `#` comments are ignored.

use crate::TrafficGen;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{MemCmd, MemRequest, ReqId};
use std::fmt::Write as _;
use std::str::FromStr;

/// One record of a memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Intended injection tick.
    pub tick: Tick,
    /// Read or write.
    pub cmd: MemCmd,
    /// Byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u32,
}

/// Error parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Replays a sequence of [`TraceEntry`]s as traffic.
///
/// # Example
/// ```
/// use dramctrl_traffic::{TraceGen, TrafficGen};
///
/// let mut g: TraceGen = "0 R 0x40 64\n100 W 0x80 64".parse()?;
/// let (t0, r0) = g.next_request().unwrap();
/// assert_eq!((t0, r0.addr), (0, 0x40));
/// assert!(g.next_request().unwrap().1.cmd.is_write());
/// assert!(g.next_request().is_none());
/// # Ok::<(), dramctrl_traffic::ParseTraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceGen {
    entries: Vec<TraceEntry>,
    pos: usize,
    next_id: u64,
}

impl TraceGen {
    /// Creates a replayer over the given entries.
    ///
    /// # Panics
    /// Panics if ticks are not non-decreasing or any size is zero.
    pub fn new(entries: Vec<TraceEntry>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].tick <= w[1].tick),
            "trace ticks must be non-decreasing"
        );
        assert!(entries.iter().all(|e| e.size > 0), "zero-sized trace entry");
        Self {
            entries,
            pos: 0,
            next_id: 0,
        }
    }

    /// Number of entries in the trace.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialises entries to the text format, suitable for `parse()`.
    pub fn to_text(entries: &[TraceEntry]) -> String {
        let mut s = String::from("# tick cmd addr size\n");
        for e in entries {
            let cmd = if e.cmd.is_read() { 'R' } else { 'W' };
            writeln!(s, "{} {} {:#x} {}", e.tick, cmd, e.addr, e.size).expect("string write");
        }
        s
    }
}

impl FromStr for TraceGen {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut entries = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| ParseTraceError {
                line: i + 1,
                reason: reason.to_owned(),
            };
            let mut parts = line.split_whitespace();
            let tick: Tick = parts
                .next()
                .ok_or_else(|| err("missing tick"))?
                .parse()
                .map_err(|_| err("bad tick"))?;
            let cmd = match parts.next().ok_or_else(|| err("missing cmd"))? {
                "R" | "r" => MemCmd::Read,
                "W" | "w" => MemCmd::Write,
                other => return Err(err(&format!("bad cmd {other:?}"))),
            };
            let addr_s = parts.next().ok_or_else(|| err("missing addr"))?;
            let addr_s = addr_s.strip_prefix("0x").unwrap_or(addr_s);
            let addr = u64::from_str_radix(addr_s, 16).map_err(|_| err("bad addr"))?;
            let size: u32 = parts
                .next()
                .ok_or_else(|| err("missing size"))?
                .parse()
                .map_err(|_| err("bad size"))?;
            if size == 0 {
                return Err(err("zero size"));
            }
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            if entries
                .last()
                .is_some_and(|prev: &TraceEntry| prev.tick > tick)
            {
                return Err(err("ticks must be non-decreasing"));
            }
            entries.push(TraceEntry {
                tick,
                cmd,
                addr,
                size,
            });
        }
        Ok(TraceGen::new(entries))
    }
}

impl SnapState for TraceGen {
    /// Captures the replay cursor and id counter. The trace entries are
    /// configuration (reloaded from the trace file) and are not written.
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.pos);
        w.u64(self.next_id);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let pos = r.usize()?;
        if pos > self.entries.len() {
            return Err(SnapError::Corrupt(format!(
                "replay cursor {pos} beyond the {}-entry trace",
                self.entries.len()
            )));
        }
        self.pos = pos;
        self.next_id = r.u64()?;
        Ok(())
    }
}

impl TrafficGen for TraceGen {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let e = *self.entries.get(self.pos)?;
        self.pos += 1;
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let req = match e.cmd {
            MemCmd::Read => MemRequest::read(id, e.addr, e.size),
            MemCmd::Write => MemRequest::write(id, e.addr, e.size),
        };
        Some((e.tick, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text() {
        let entries = vec![
            TraceEntry {
                tick: 0,
                cmd: MemCmd::Read,
                addr: 0x40,
                size: 64,
            },
            TraceEntry {
                tick: 1500,
                cmd: MemCmd::Write,
                addr: 0x1000,
                size: 32,
            },
        ];
        let text = TraceGen::to_text(&entries);
        let parsed: TraceGen = text.parse().unwrap();
        assert_eq!(parsed.entries, entries);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g: TraceGen = "# header\n\n0 R 40 64\n".parse().unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.entries[0].addr, 0x40);
    }

    #[test]
    fn messy_input_survives_full_round_trip() {
        // Comments (leading and interior), blank lines, surrounding
        // whitespace, lower-case commands, `0x`-less addresses and
        // unaligned sizes must all survive
        // parse → to_text → parse → replay.
        let messy = "\
# recorded by hand

  0 r 40 64
10 W 0xff8 64

# a burst of unaligned accesses
20 R 1fff 3
20 w 0x2000 100
\t30 R 0 1
";
        let first: TraceGen = messy.parse().unwrap();
        assert_eq!(first.len(), 5);
        assert_eq!(first.entries[0].addr, 0x40);
        assert_eq!(first.entries[2].addr, 0x1fff);
        assert_eq!(first.entries[2].size, 3);

        let canonical = TraceGen::to_text(&first.entries);
        let mut second: TraceGen = canonical.parse().unwrap();
        assert_eq!(second.entries, first.entries);
        // Canonical text is a fixed point.
        assert_eq!(TraceGen::to_text(&second.entries), canonical);

        // Replay matches the entries record for record.
        let mut replayed = Vec::new();
        while let Some((tick, req)) = second.next_request() {
            replayed.push((tick, req.cmd, req.addr, req.size));
        }
        let expected: Vec<_> = first
            .entries
            .iter()
            .map(|e| (e.tick, e.cmd, e.addr, e.size))
            .collect();
        assert_eq!(replayed, expected);
    }

    #[test]
    fn extreme_values_round_trip() {
        let entries = vec![TraceEntry {
            tick: Tick::MAX,
            cmd: MemCmd::Write,
            addr: u64::MAX,
            size: u32::MAX,
        }];
        let parsed: TraceGen = TraceGen::to_text(&entries).parse().unwrap();
        assert_eq!(parsed.entries, entries);
    }

    #[test]
    fn rejects_descending_ticks() {
        let e = "100 R 0x0 64\n50 R 0x40 64".parse::<TraceGen>();
        assert!(e.unwrap_err().to_string().contains("non-decreasing"));
    }

    #[test]
    fn rejects_garbage() {
        assert!("x R 0 64".parse::<TraceGen>().is_err());
        assert!("0 Q 0 64".parse::<TraceGen>().is_err());
        assert!("0 R zz 64".parse::<TraceGen>().is_err());
        assert!("0 R 0 0".parse::<TraceGen>().is_err());
        assert!("0 R 0 64 extra".parse::<TraceGen>().is_err());
    }

    #[test]
    fn assigns_sequential_ids() {
        let mut g: TraceGen = "0 R 0 64\n0 W 40 64".parse().unwrap();
        assert_eq!(g.next_request().unwrap().1.id, ReqId(0));
        assert_eq!(g.next_request().unwrap().1.id, ReqId(1));
    }
}
