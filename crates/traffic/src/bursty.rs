//! Bursty (on/off) traffic shaping.

use crate::TrafficGen;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::MemRequest;

/// Wraps another generator and reshapes its timeline into alternating
/// on/off windows: the inner stream plays during `on`-long windows
/// separated by `off`-long silences. Models the duty-cycled behaviour of
/// real devices (frame rendering, periodic wakeups) and is the natural
/// workload for the controller's power-down extension.
///
/// The inner generator's tick `t` maps to `t + (t / on) * off`, so
/// per-window pacing is preserved and gaps are inserted between windows.
///
/// # Example
/// ```
/// use dramctrl_traffic::{BurstyGen, LinearGen, TrafficGen};
///
/// // 1 us of traffic, then 9 us of silence, repeating.
/// let inner = LinearGen::new(0, 1 << 20, 64, 100, 100_000, 25, 1);
/// let mut g = BurstyGen::new(inner, 1_000_000, 9_000_000);
/// let ticks: Vec<u64> = std::iter::from_fn(|| g.next_request())
///     .map(|(t, _)| t)
///     .collect();
/// // Requests 0..10 fill the first window, 10..20 the second.
/// assert!(ticks[9] < 1_000_000);
/// assert!(ticks[10] >= 10_000_000);
/// ```
#[derive(Debug)]
pub struct BurstyGen<G> {
    inner: G,
    on: Tick,
    off: Tick,
}

impl<G: TrafficGen> BurstyGen<G> {
    /// Creates an on/off shaper over `inner`.
    ///
    /// # Panics
    /// Panics if `on` is zero.
    pub fn new(inner: G, on: Tick, off: Tick) -> Self {
        assert!(on > 0, "the on-window must be non-empty");
        Self { inner, on, off }
    }

    /// Consumes the shaper, returning the inner generator.
    pub fn into_inner(self) -> G {
        self.inner
    }
}

impl<G: SnapState> SnapState for BurstyGen<G> {
    /// The shaper itself is a pure function of the inner tick stream;
    /// only the inner generator's state is written.
    fn save_state(&self, w: &mut SnapWriter) {
        self.inner.save_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.inner.restore_state(r)
    }
}

impl<G: TrafficGen> TrafficGen for BurstyGen<G> {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let (t, req) = self.inner.next_request()?;
        let window = t / self.on;
        Some((t + window * self.off, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearGen;

    #[test]
    fn inserts_gaps_between_windows() {
        // Inner: one request every 10 ticks; windows of 100 on / 900 off.
        let inner = LinearGen::new(0, 1 << 20, 64, 100, 10, 30, 1);
        let mut g = BurstyGen::new(inner, 100, 900);
        let ticks: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(t, _)| t)
            .collect();
        assert_eq!(ticks.len(), 30);
        // First window: ticks 0..100 untouched.
        assert_eq!(&ticks[..10], &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
        // Second window starts at 1000.
        assert_eq!(ticks[10], 1_000);
        assert_eq!(ticks[19], 1_090);
        assert_eq!(ticks[20], 2_000);
        // Monotone overall.
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn zero_off_is_transparent() {
        let mk = || LinearGen::new(0, 1 << 20, 64, 100, 7, 20, 1);
        let plain: Vec<_> = {
            let mut g = mk();
            std::iter::from_fn(move || g.next_request()).collect()
        };
        let shaped: Vec<_> = {
            let mut g = BurstyGen::new(mk(), 100, 0);
            std::iter::from_fn(move || g.next_request()).collect()
        };
        assert_eq!(plain, shaped);
    }

    #[test]
    #[should_panic(expected = "on-window")]
    fn zero_on_panics() {
        let _ = BurstyGen::new(LinearGen::new(0, 1 << 20, 64, 100, 1, 1, 1), 0, 10);
    }
}
