//! Weighted interleaving of traffic streams.

use crate::TrafficGen;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{MemRequest, ReqId};

/// Interleaves two generators with a fixed ratio, renumbering requests so
/// ids stay globally unique. Useful for hot/cold working-set mixes and
/// foreground/background QoS scenarios.
///
/// Out of every `a_share + b_share` requests, `a_share` come from `a` and
/// `b_share` from `b` (round-robin within the window). When one stream is
/// exhausted the other continues alone. Injection ticks are taken from
/// whichever inner generator produced the request, so the two streams'
/// pacing must be compatible (or zero for saturation runs).
///
/// # Example
/// ```
/// use dramctrl_traffic::{InterleaveGen, LinearGen, TrafficGen};
///
/// let hot = LinearGen::new(0, 4096, 64, 100, 0, 9, 1);
/// let cold = LinearGen::new(1 << 20, (1 << 20) + 4096, 64, 100, 0, 1, 2);
/// // Nine hot requests for every cold one.
/// let mut g = InterleaveGen::new(hot, cold, 9, 1);
/// let reqs: Vec<_> = std::iter::from_fn(|| g.next_request()).collect();
/// assert_eq!(reqs.len(), 10);
/// assert_eq!(reqs.iter().filter(|(_, r)| r.addr >= (1 << 20)).count(), 1);
/// ```
#[derive(Debug)]
pub struct InterleaveGen<A, B> {
    a: A,
    b: B,
    a_share: u32,
    b_share: u32,
    slot: u32,
    next_id: u64,
}

impl<A: TrafficGen, B: TrafficGen> InterleaveGen<A, B> {
    /// Creates an interleaver emitting `a_share` requests from `a` for
    /// every `b_share` from `b`.
    ///
    /// # Panics
    /// Panics if either share is zero.
    pub fn new(a: A, b: B, a_share: u32, b_share: u32) -> Self {
        assert!(a_share > 0 && b_share > 0, "shares must be positive");
        Self {
            a,
            b,
            a_share,
            b_share,
            slot: 0,
            next_id: 0,
        }
    }
}

impl<A: SnapState, B: SnapState> SnapState for InterleaveGen<A, B> {
    fn save_state(&self, w: &mut SnapWriter) {
        self.a.save_state(w);
        self.b.save_state(w);
        w.u32(self.slot);
        w.u64(self.next_id);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.a.restore_state(r)?;
        self.b.restore_state(r)?;
        self.slot = r.u32()?;
        self.next_id = r.u64()?;
        Ok(())
    }
}

impl<A: TrafficGen, B: TrafficGen> TrafficGen for InterleaveGen<A, B> {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let window = self.a_share + self.b_share;
        let from_a = self.slot % window < self.a_share;
        self.slot = (self.slot + 1) % window;
        let inner = if from_a {
            self.a.next_request().or_else(|| self.b.next_request())
        } else {
            self.b.next_request().or_else(|| self.a.next_request())
        };
        inner.map(|(t, mut req)| {
            req.id = ReqId(self.next_id);
            self.next_id += 1;
            (t, req)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearGen;

    fn gen_at(base: u64, count: u64) -> LinearGen {
        LinearGen::new(base, base + (1 << 20), 64, 100, 0, count, 1)
    }

    #[test]
    fn ratio_respected() {
        let mut g = InterleaveGen::new(gen_at(0, 30), gen_at(1 << 30, 10), 3, 1);
        let reqs: Vec<_> = std::iter::from_fn(|| g.next_request()).collect();
        assert_eq!(reqs.len(), 40);
        // First window: a, a, a, b.
        let from_b = |r: &MemRequest| r.addr >= (1 << 30);
        assert!(!from_b(&reqs[0].1) && !from_b(&reqs[2].1));
        assert!(from_b(&reqs[3].1));
        assert_eq!(reqs.iter().filter(|(_, r)| from_b(r)).count(), 10);
    }

    #[test]
    fn ids_globally_unique_and_sequential() {
        let mut g = InterleaveGen::new(gen_at(0, 5), gen_at(1 << 30, 5), 1, 1);
        let ids: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(_, r)| r.id.0)
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn survives_one_stream_ending() {
        let mut g = InterleaveGen::new(gen_at(0, 2), gen_at(1 << 30, 8), 1, 1);
        let reqs: Vec<_> = std::iter::from_fn(|| g.next_request()).collect();
        assert_eq!(reqs.len(), 10, "b continues after a runs dry");
    }

    #[test]
    #[should_panic(expected = "shares must be positive")]
    fn zero_share_panics() {
        let _ = InterleaveGen::new(gen_at(0, 1), gen_at(0, 1), 0, 1);
    }
}
