//! Statistical state-machine traffic (gem5's `TrafficGen` configuration
//! style, paper Section III-A: "a number of traffic generators, either
//! based on statistical behaviours or traces").
//!
//! A [`StateMachineGen`] walks a probabilistic graph of states — idle,
//! linear or random traffic with per-state parameters — staying in each
//! state for its configured duration, then sampling the next from a
//! row-stochastic transition matrix.

use crate::{LinearGen, RandomGen, TrafficGen};
use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::{MemRequest, ReqId};

/// Traffic emitted while a state is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateTraffic {
    /// No traffic.
    Idle,
    /// Sequential addresses over `[start, end)`.
    Linear {
        /// Range start.
        start: u64,
        /// Range end (exclusive).
        end: u64,
        /// Request size in bytes.
        block: u32,
        /// Percentage of reads.
        read_pct: u8,
        /// Inter-transaction time (must be non-zero).
        period: Tick,
    },
    /// Uniformly random block-aligned addresses over `[start, end)`.
    Random {
        /// Range start.
        start: u64,
        /// Range end (exclusive).
        end: u64,
        /// Request size in bytes.
        block: u32,
        /// Percentage of reads.
        read_pct: u8,
        /// Inter-transaction time (must be non-zero).
        period: Tick,
    },
}

/// One state of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineState {
    /// What to emit while here.
    pub traffic: StateTraffic,
    /// How long to stay.
    pub duration: Tick,
}

/// Error building a [`StateMachineGen`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineError(String);

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid traffic state machine: {}", self.0)
    }
}

impl std::error::Error for MachineError {}

enum Active {
    Idle,
    Linear(LinearGen),
    Random(RandomGen),
}

impl std::fmt::Debug for Active {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Active::Idle => "Idle",
            Active::Linear(_) => "Linear",
            Active::Random(_) => "Random",
        })
    }
}

/// A probabilistic state machine over traffic patterns.
///
/// # Example
/// ```
/// use dramctrl_traffic::{MachineState, StateMachineGen, StateTraffic, TrafficGen};
///
/// // Alternate 1 us of linear traffic with 1 us of idle.
/// let states = vec![
///     MachineState {
///         traffic: StateTraffic::Linear {
///             start: 0, end: 1 << 20, block: 64, read_pct: 100, period: 50_000,
///         },
///         duration: 1_000_000,
///     },
///     MachineState { traffic: StateTraffic::Idle, duration: 1_000_000 },
/// ];
/// let transitions = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
/// let mut g = StateMachineGen::new(states, transitions, 4_000_000, 7)?;
/// let ticks: Vec<u64> = std::iter::from_fn(|| g.next_request()).map(|(t, _)| t).collect();
/// // Traffic in [0,1us) and [2us,3us); silence elsewhere.
/// assert!(ticks.iter().all(|&t| t < 1_000_000 || (2_000_000..3_000_000).contains(&t)));
/// # Ok::<(), dramctrl_traffic::MachineError>(())
/// ```
#[derive(Debug)]
pub struct StateMachineGen {
    states: Vec<MachineState>,
    transitions: Vec<Vec<f64>>,
    rng: Rng,
    seed: u64,
    cur: usize,
    state_start: Tick,
    horizon: Tick,
    active: Active,
    next_id: u64,
    visits: Vec<u64>,
}

impl StateMachineGen {
    /// Builds a machine starting in state 0, running until `horizon`.
    ///
    /// # Errors
    /// Rejects empty machines, non-square or non-stochastic transition
    /// matrices, zero-duration states and active states with a zero
    /// period.
    pub fn new(
        states: Vec<MachineState>,
        transitions: Vec<Vec<f64>>,
        horizon: Tick,
        seed: u64,
    ) -> Result<Self, MachineError> {
        if states.is_empty() {
            return Err(MachineError("at least one state required".into()));
        }
        if transitions.len() != states.len()
            || transitions.iter().any(|row| row.len() != states.len())
        {
            return Err(MachineError(format!(
                "transition matrix must be {n}x{n}",
                n = states.len()
            )));
        }
        for (i, row) in transitions.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) || (sum - 1.0).abs() > 1e-9 {
                return Err(MachineError(format!("row {i} is not a distribution")));
            }
        }
        for (i, s) in states.iter().enumerate() {
            if s.duration == 0 {
                return Err(MachineError(format!("state {i} has zero duration")));
            }
            match s.traffic {
                StateTraffic::Linear { period, .. } | StateTraffic::Random { period, .. }
                    if period == 0 =>
                {
                    return Err(MachineError(format!("state {i} has zero period")));
                }
                _ => {}
            }
        }
        let visits = vec![0; states.len()];
        let mut machine = Self {
            states,
            transitions,
            rng: Rng::seed_from_u64(seed),
            seed,
            cur: 0,
            state_start: 0,
            horizon,
            active: Active::Idle,
            next_id: 0,
            visits,
        };
        machine.enter(0, 0);
        Ok(machine)
    }

    /// How many times each state has been entered.
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    fn enter(&mut self, state: usize, at: Tick) {
        self.cur = state;
        self.state_start = at;
        self.visits[state] += 1;
        // Each visit gets its own deterministic sub-seed so revisiting a
        // state does not replay identical addresses.
        let sub_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.visits.iter().sum::<u64>());
        self.active = self.make_active(state, sub_seed);
    }

    /// Builds the generator driving `state`. Also used on snapshot restore
    /// (with a placeholder seed) before the generator's dynamic state is
    /// overwritten.
    fn make_active(&self, state: usize, sub_seed: u64) -> Active {
        let s = self.states[state];
        let count = match s.traffic {
            StateTraffic::Idle => 0,
            StateTraffic::Linear { period, .. } | StateTraffic::Random { period, .. } => {
                s.duration / period + 1
            }
        };
        match s.traffic {
            StateTraffic::Idle => Active::Idle,
            StateTraffic::Linear {
                start,
                end,
                block,
                read_pct,
                period,
            } => Active::Linear(LinearGen::new(
                start, end, block, read_pct, period, count, sub_seed,
            )),
            StateTraffic::Random {
                start,
                end,
                block,
                read_pct,
                period,
            } => Active::Random(RandomGen::new(
                start, end, block, read_pct, period, count, sub_seed,
            )),
        }
    }

    fn transition(&mut self) -> bool {
        let end = self.state_start + self.states[self.cur].duration;
        if end >= self.horizon {
            return false;
        }
        let roll = self.rng.gen_f64();
        let row = &self.transitions[self.cur];
        let mut acc = 0.0;
        let mut next = row.len() - 1;
        for (i, &p) in row.iter().enumerate() {
            acc += p;
            if roll < acc {
                next = i;
                break;
            }
        }
        self.enter(next, end);
        true
    }
}

impl SnapState for StateMachineGen {
    /// Captures the machine's dynamic state: the transition RNG, the
    /// current state and its start tick, the id counter, visit counts and
    /// the active generator (tagged by kind, then its own state). The
    /// state list, transition matrix, horizon and seed are construction
    /// parameters and are not written.
    fn save_state(&self, w: &mut SnapWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.usize(self.cur);
        w.u64(self.state_start);
        w.u64(self.next_id);
        w.usize(self.visits.len());
        for &v in &self.visits {
            w.u64(v);
        }
        match &self.active {
            Active::Idle => w.u8(0),
            Active::Linear(g) => {
                w.u8(1);
                g.save_state(w);
            }
            Active::Random(g) => {
                w.u8(2);
                g.save_state(w);
            }
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rng = Rng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let cur = r.usize()?;
        if cur >= self.states.len() {
            return Err(SnapError::Corrupt(format!(
                "current state {cur} outside the {}-state machine",
                self.states.len()
            )));
        }
        self.cur = cur;
        self.state_start = r.u64()?;
        self.next_id = r.u64()?;
        let n_visits = r.usize()?;
        if n_visits != self.visits.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot tracks {n_visits} states, machine has {}",
                self.visits.len()
            )));
        }
        for v in &mut self.visits {
            *v = r.u64()?;
        }
        let tag = r.u8()?;
        let expected = match self.states[cur].traffic {
            StateTraffic::Idle => 0,
            StateTraffic::Linear { .. } => 1,
            StateTraffic::Random { .. } => 2,
        };
        if tag != expected {
            return Err(SnapError::Corrupt(format!(
                "active generator tag {tag} does not match state {cur}'s traffic kind"
            )));
        }
        // Rebuild the generator from the state's configuration, then
        // overwrite its dynamic state from the snapshot.
        self.active = self.make_active(cur, 0);
        match &mut self.active {
            Active::Idle => {}
            Active::Linear(g) => g.restore_state(r)?,
            Active::Random(g) => g.restore_state(r)?,
        }
        Ok(())
    }
}

impl TrafficGen for StateMachineGen {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        loop {
            let duration = self.states[self.cur].duration;
            let inner = match &mut self.active {
                Active::Idle => None,
                Active::Linear(g) => g.next_request(),
                Active::Random(g) => g.next_request(),
            };
            match inner {
                Some((t, mut req)) if t < duration => {
                    let at = self.state_start + t;
                    if at >= self.horizon {
                        return None;
                    }
                    req.id = ReqId(self.next_id);
                    self.next_id += 1;
                    return Some((at, req));
                }
                _ => {
                    // State exhausted (or idle): move on.
                    if !self.transition() {
                        return None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_state(period: Tick, duration: Tick) -> MachineState {
        MachineState {
            traffic: StateTraffic::Linear {
                start: 0,
                end: 1 << 20,
                block: 64,
                read_pct: 100,
                period,
            },
            duration,
        }
    }

    fn idle_state(duration: Tick) -> MachineState {
        MachineState {
            traffic: StateTraffic::Idle,
            duration,
        }
    }

    #[test]
    fn alternates_on_and_off() {
        let states = vec![linear_state(100, 1_000), idle_state(1_000)];
        let transitions = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut g = StateMachineGen::new(states, transitions, 10_000, 1).unwrap();
        let ticks: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(t, _)| t)
            .collect();
        assert!(!ticks.is_empty());
        // All requests fall in even [2k, 2k+1000) windows.
        assert!(ticks.iter().all(|t| (t / 1_000) % 2 == 0), "{ticks:?}");
        // Both states visited repeatedly.
        assert!(g.visits()[0] >= 4 && g.visits()[1] >= 4);
    }

    #[test]
    fn ids_unique_across_states() {
        let states = vec![linear_state(100, 500), idle_state(200)];
        let transitions = vec![vec![0.2, 0.8], vec![1.0, 0.0]];
        let mut g = StateMachineGen::new(states, transitions, 20_000, 3).unwrap();
        let mut ids: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(_, r)| r.id.0)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "request ids must not repeat");
    }

    #[test]
    fn ticks_monotone_and_bounded() {
        let states = vec![
            linear_state(70, 700),
            idle_state(300),
            MachineState {
                traffic: StateTraffic::Random {
                    start: 0,
                    end: 1 << 22,
                    block: 64,
                    read_pct: 50,
                    period: 130,
                },
                duration: 900,
            },
        ];
        let transitions = vec![
            vec![0.0, 0.5, 0.5],
            vec![0.5, 0.0, 0.5],
            vec![0.5, 0.5, 0.0],
        ];
        let mut g = StateMachineGen::new(states, transitions, 50_000, 9).unwrap();
        let ticks: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(t, _)| t)
            .collect();
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]));
        assert!(ticks.iter().all(|&t| t < 50_000));
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_visits() {
        // Random traffic so the seed actually matters.
        let states = vec![
            MachineState {
                traffic: StateTraffic::Random {
                    start: 0,
                    end: 1 << 20,
                    block: 64,
                    read_pct: 50,
                    period: 100,
                },
                duration: 400,
            },
            idle_state(100),
        ];
        let transitions = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let collect = |seed| {
            let mut g =
                StateMachineGen::new(states.clone(), transitions.clone(), 5_000, seed).unwrap();
            std::iter::from_fn(move || g.next_request())
                .map(|(t, r)| (t, r.addr, r.cmd.is_read()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn rejects_bad_configurations() {
        let s = vec![linear_state(100, 1_000)];
        assert!(StateMachineGen::new(vec![], vec![], 1_000, 0).is_err());
        assert!(StateMachineGen::new(s.clone(), vec![vec![0.5]], 1_000, 0).is_err());
        assert!(StateMachineGen::new(s.clone(), vec![vec![1.0, 0.0]], 1_000, 0).is_err());
        let zero_dur = vec![MachineState {
            traffic: StateTraffic::Idle,
            duration: 0,
        }];
        assert!(StateMachineGen::new(zero_dur, vec![vec![1.0]], 1_000, 0).is_err());
        let zero_period = vec![linear_state(0, 1_000)];
        assert!(StateMachineGen::new(zero_period, vec![vec![1.0]], 1_000, 0).is_err());
    }

    #[test]
    fn transition_probabilities_respected() {
        // 80/20 split between two active states.
        let states = vec![linear_state(100, 100), linear_state(100, 100)];
        let transitions = vec![vec![0.8, 0.2], vec![0.8, 0.2]];
        let mut g = StateMachineGen::new(states, transitions, 1_000_000, 11).unwrap();
        while g.next_request().is_some() {}
        let v = g.visits();
        let frac = v[0] as f64 / (v[0] + v[1]) as f64;
        assert!((0.72..0.88).contains(&frac), "state-0 fraction {frac:.3}");
    }
}
