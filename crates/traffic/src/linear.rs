//! Sequential-address traffic.

use crate::{Pacer, TrafficGen};
use dramctrl_kernel::rng::Rng;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::MemRequest;

/// Generates bursts with a sequential address stream (paper Section
/// III-A), wrapping at the end of the range. The read/write mix is chosen
/// per request from a seeded RNG.
///
/// # Example
/// ```
/// use dramctrl_traffic::{LinearGen, TrafficGen};
///
/// let mut g = LinearGen::new(0x0, 0x1000, 64, 100, 0, 4, 1);
/// let addrs: Vec<u64> = std::iter::from_fn(|| g.next_request())
///     .map(|(_, r)| r.addr)
///     .collect();
/// assert_eq!(addrs, vec![0, 64, 128, 192]);
/// ```
#[derive(Debug)]
pub struct LinearGen {
    pacer: Pacer,
    start: u64,
    end: u64,
    block: u32,
    read_pct: u8,
    cur: u64,
    rng: Rng,
}

impl LinearGen {
    /// Creates a linear generator over `[start, end)` issuing
    /// `block`-byte requests, `read_pct`% of them reads, `period` ticks
    /// apart, for `count` requests, seeded with `seed`.
    ///
    /// # Panics
    /// Panics if the range is empty, `block` is zero or `read_pct > 100`.
    pub fn new(
        start: u64,
        end: u64,
        block: u32,
        read_pct: u8,
        period: Tick,
        count: u64,
        seed: u64,
    ) -> Self {
        assert!(end > start, "address range must be non-empty");
        assert!(block > 0, "block size must be non-zero");
        assert!(read_pct <= 100, "read percentage must be at most 100");
        assert!(
            end - start >= u64::from(block),
            "range must hold at least one block"
        );
        Self {
            pacer: Pacer::new(period, count),
            start,
            end,
            block,
            read_pct,
            cur: start,
            rng: Rng::seed_from_u64(seed),
        }
    }
}

impl SnapState for LinearGen {
    fn save_state(&self, w: &mut SnapWriter) {
        self.pacer.save_state(w);
        w.u64(self.cur);
        for word in self.rng.state() {
            w.u64(word);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.pacer.restore_state(r)?;
        let cur = r.u64()?;
        if cur < self.start || cur > self.end {
            return Err(SnapError::Corrupt(format!(
                "linear cursor {cur:#x} outside the address range"
            )));
        }
        self.cur = cur;
        self.rng = Rng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        Ok(())
    }
}

impl TrafficGen for LinearGen {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        let (tick, id) = self.pacer.take()?;
        if self.cur + u64::from(self.block) > self.end {
            self.cur = self.start; // wrap
        }
        let addr = self.cur;
        self.cur += u64::from(self.block);
        let req = if self.rng.gen_range(0..100) < u64::from(self.read_pct) {
            MemRequest::read(id, addr, self.block)
        } else {
            MemRequest::write(id, addr, self.block)
        };
        Some((tick, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_at_range_end() {
        let mut g = LinearGen::new(0, 128, 64, 100, 10, 5, 0);
        let addrs: Vec<_> = std::iter::from_fn(|| g.next_request())
            .map(|(_, r)| r.addr)
            .collect();
        assert_eq!(addrs, vec![0, 64, 0, 64, 0]);
    }

    #[test]
    fn read_pct_zero_is_all_writes() {
        let mut g = LinearGen::new(0, 4096, 64, 0, 0, 20, 7);
        assert!(std::iter::from_fn(|| g.next_request()).all(|(_, r)| r.cmd.is_write()));
    }

    #[test]
    fn read_pct_hundred_is_all_reads() {
        let mut g = LinearGen::new(0, 4096, 64, 100, 0, 20, 7);
        assert!(std::iter::from_fn(|| g.next_request()).all(|(_, r)| r.cmd.is_read()));
    }

    #[test]
    fn mixed_ratio_roughly_respected() {
        let mut g = LinearGen::new(0, 1 << 20, 64, 50, 0, 2_000, 42);
        let reads = std::iter::from_fn(|| g.next_request())
            .filter(|(_, r)| r.cmd.is_read())
            .count();
        assert!((800..1_200).contains(&reads), "reads = {reads}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = LinearGen::new(64, 64, 64, 100, 0, 1, 0);
    }
}
