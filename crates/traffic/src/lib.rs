//! # dramctrl-traffic — synthetic traffic generation and measurement
//!
//! The generators of paper Section III-A:
//!
//! * [`LinearGen`] — sequential address stream with a configurable
//!   read/write mix;
//! * [`RandomGen`] — uniformly random burst addresses;
//! * [`DramAwareGen`] — created as part of the paper: knows the DRAM's
//!   page size, bank count and address mapping, so experiments can dial in
//!   a target row-hit rate (via the sequential stride) and bank-level
//!   parallelism (via the number of banks touched) to expose individual
//!   timing constraints (tRCD, tCL, tRP, tRRD, tFAW, tWTR);
//! * [`TraceGen`] — replays a recorded trace (with a text file format);
//! * [`BurstyGen`] — reshapes any generator into on/off duty cycles (for
//!   the low-power extension studies).
//!
//! [`Tester`] drives any generator into any
//! [`Controller`](dramctrl_mem::Controller) with flow control, measuring
//! end-to-end read latency distributions and achieved bandwidth — the
//! harness behind the validation figures (paper Figures 3–7).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bursty;
mod dram_aware;
mod interleave;
mod linear;
mod machine;
mod pacer;
mod random;
mod tester;
mod trace;

pub use bursty::BurstyGen;
pub use dram_aware::DramAwareGen;
pub use interleave::InterleaveGen;
pub use linear::LinearGen;
pub use machine::{MachineError, MachineState, StateMachineGen, StateTraffic};
pub use pacer::Pacer;
pub use random::RandomGen;
pub use tester::{TestRun, TestSummary, Tester};
pub use trace::{ParseTraceError, TraceEntry, TraceGen};

use dramctrl_kernel::Tick;
use dramctrl_mem::MemRequest;

/// A source of timed memory requests.
///
/// Generators are open-loop: they propose an injection tick for every
/// request; the [`Tester`] applies controller backpressure on top.
pub trait TrafficGen {
    /// The next request and its intended injection time, or `None` when
    /// the stream is exhausted. Ticks are non-decreasing.
    fn next_request(&mut self) -> Option<(Tick, MemRequest)>;
}

impl<T: TrafficGen + ?Sized> TrafficGen for Box<T> {
    fn next_request(&mut self) -> Option<(Tick, MemRequest)> {
        (**self).next_request()
    }
}

/// A traffic generator whose stream position can be checkpointed:
/// [`TrafficGen`] plus [`SnapState`](dramctrl_kernel::snap::SnapState).
///
/// Every generator in this crate implements it (blanket impl), and
/// `Box<dyn SnapGen>` is itself both a generator and snapshottable, so
/// run-time-selected workloads participate in crash-safe checkpoints.
pub trait SnapGen: TrafficGen + dramctrl_kernel::snap::SnapState {}

impl<T: TrafficGen + dramctrl_kernel::snap::SnapState> SnapGen for T {}
