//! Shared pacing and identity state for generators.

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;
use dramctrl_mem::ReqId;

/// Issue pacing shared by all generators: a fixed inter-transaction time
/// and a running request id.
///
/// A `period` of zero asks for back-to-back injection (the controller's
/// flow control then sets the pace — used for saturation sweeps).
#[derive(Debug, Clone)]
pub struct Pacer {
    period: Tick,
    next_tick: Tick,
    next_id: u64,
    remaining: u64,
}

impl Pacer {
    /// Creates a pacer issuing `count` requests `period` ticks apart,
    /// starting at tick 0.
    pub fn new(period: Tick, count: u64) -> Self {
        Self {
            period,
            next_tick: 0,
            next_id: 0,
            remaining: count,
        }
    }

    /// Starts issuing at `start` instead of 0.
    pub fn starting_at(mut self, start: Tick) -> Self {
        self.next_tick = start;
        self
    }

    /// Takes the next (tick, id) slot, or `None` when exhausted.
    pub fn take(&mut self) -> Option<(Tick, ReqId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let slot = (self.next_tick, ReqId(self.next_id));
        self.next_id += 1;
        self.next_tick += self.period;
        Some(slot)
    }

    /// Requests not yet issued.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl SnapState for Pacer {
    /// Captures the issue cursor: next tick, next id and the remaining
    /// count. The period is a construction parameter and is not written.
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.next_tick);
        w.u64(self.next_id);
        w.u64(self.remaining);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_tick = r.u64()?;
        self.next_id = r.u64()?;
        self.remaining = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_and_numbers() {
        let mut p = Pacer::new(100, 3);
        assert_eq!(p.take(), Some((0, ReqId(0))));
        assert_eq!(p.take(), Some((100, ReqId(1))));
        assert_eq!(p.take(), Some((200, ReqId(2))));
        assert_eq!(p.take(), None);
    }

    #[test]
    fn zero_period_back_to_back() {
        let mut p = Pacer::new(0, 2).starting_at(50);
        assert_eq!(p.take(), Some((50, ReqId(0))));
        assert_eq!(p.take(), Some((50, ReqId(1))));
        assert_eq!(p.remaining(), 0);
    }
}
