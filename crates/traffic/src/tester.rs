//! The measurement harness that drives a generator into a controller.

use std::collections::BTreeMap;

use crate::TrafficGen;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::{tick, Tick};
use dramctrl_mem::{CommonStats, Controller, MemResponse, Rejected, ReqId};
use dramctrl_stats::{Histogram, HistogramParts};

/// Drives a [`TrafficGen`] into a [`Controller`] with flow control and
/// measures what the paper's validation plots need: end-to-end latency
/// distributions (Figures 6–7) and achieved bandwidth / bus utilisation
/// (Figures 3–5). Latency is measured *from the traffic generator*,
/// including queueing, exactly as in paper Section III-C2.
///
/// [`run`](Self::run) and [`run_until`](Self::run_until) drive a whole
/// stream in one call; [`begin`](Self::begin) hands out a resumable
/// [`TestRun`] whose per-request [`step`](TestRun::step) loop can be
/// paused at any request boundary, checkpointed (it implements
/// [`SnapState`]) and continued — the basis of crash-safe simulation.
///
/// # Example
/// ```
/// use dramctrl::{CtrlConfig, DramCtrl};
/// use dramctrl_mem::presets;
/// use dramctrl_traffic::{LinearGen, Tester};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = DramCtrl::new(CtrlConfig::new(presets::ddr3_1333_x64()))?;
/// let mut gen = LinearGen::new(0, 1 << 20, 64, 100, 6_000, 1_000, 1);
/// let summary = Tester::new(2_000, 200).run(&mut gen, &mut ctrl);
/// assert_eq!(summary.reads_completed, 1_000);
/// assert!(summary.bus_util > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tester {
    max_lat_ns: u64,
    buckets: usize,
}

/// The results of a [`Tester`] run.
#[derive(Debug, Clone)]
pub struct TestSummary {
    /// Tick at which the run (including the final drain) completed.
    pub duration: Tick,
    /// Read responses received.
    pub reads_completed: u64,
    /// Write acknowledgements received.
    pub writes_completed: u64,
    /// Requests dropped because they could never fit the controller.
    pub dropped: u64,
    /// Injection attempts that hit controller backpressure.
    pub inject_stalls: u64,
    /// End-to-end read latency distribution, in nanoseconds.
    pub read_lat_ns: Histogram,
    /// End-to-end write-acknowledgement latency distribution, in
    /// nanoseconds.
    pub write_lat_ns: Histogram,
    /// Controller statistics snapshot at the end of the run.
    pub ctrl: CommonStats,
    /// Data-bus utilisation over the run.
    pub bus_util: f64,
    /// Achieved bandwidth in GB/s over the run.
    pub bandwidth_gbps: f64,
}

impl Tester {
    /// Creates a tester whose latency histograms span `[0, max_lat_ns)` ns
    /// with `buckets` bins.
    ///
    /// # Panics
    /// Panics if `max_lat_ns` does not divide evenly into `buckets`.
    pub fn new(max_lat_ns: u64, buckets: usize) -> Self {
        // Validate eagerly so misconfiguration fails before a long run.
        let _ = Histogram::new(0, max_lat_ns, buckets);
        Self {
            max_lat_ns,
            buckets,
        }
    }

    /// Starts a resumable run. Drive it with [`TestRun::step`], then call
    /// [`TestRun::finish`]; `run`/`run_until` are convenience wrappers
    /// around exactly this loop.
    pub fn begin(&self) -> TestRun {
        TestRun {
            read_lat: Histogram::new(0, self.max_lat_ns, self.buckets),
            write_lat: Histogram::new(0, self.max_lat_ns, self.buckets),
            sent: BTreeMap::new(),
            out: Vec::new(),
            reads: 0,
            writes: 0,
            dropped: 0,
            stalls: 0,
            now: 0,
            injected: 0,
            done: false,
        }
    }

    /// Runs the full generator stream through `ctrl` and drains.
    pub fn run<C: Controller>(&self, gen: &mut impl TrafficGen, ctrl: &mut C) -> TestSummary {
        self.run_until(gen, ctrl, Tick::MAX)
    }

    /// Runs until the generator is exhausted or proposes an injection past
    /// `until`, then drains outstanding work.
    pub fn run_until<C: Controller>(
        &self,
        gen: &mut impl TrafficGen,
        ctrl: &mut C,
        until: Tick,
    ) -> TestSummary {
        let mut run = self.begin();
        while run.step(gen, ctrl, until) {}
        run.finish(ctrl)
    }
}

impl Default for Tester {
    /// A tester with a 2 us / 200-bucket latency histogram.
    fn default() -> Self {
        Self::new(2_000, 200)
    }
}

/// An in-flight [`Tester`] run that can be paused between requests.
///
/// Each [`step`](Self::step) pulls one request from the generator and
/// injects it (applying controller backpressure); the boundary between
/// steps is a legal checkpoint: snapshotting the run, the generator and
/// the controller there, then restoring all three into fresh instances,
/// continues the simulation with byte-identical results.
#[derive(Debug)]
pub struct TestRun {
    read_lat: Histogram,
    write_lat: Histogram,
    sent: BTreeMap<ReqId, Tick>,
    /// Scratch response buffer; always drained within a step, so it is
    /// empty at every checkpoint boundary and never serialised.
    out: Vec<MemResponse>,
    reads: u64,
    writes: u64,
    dropped: u64,
    stalls: u64,
    now: Tick,
    injected: u64,
    done: bool,
}

impl TestRun {
    /// Requests pulled from the generator so far (the step count — used to
    /// place periodic checkpoints).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Current simulation time at the injection frontier.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Whether the stream is exhausted (further `step` calls are no-ops).
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn absorb(&mut self) {
        for resp in self.out.drain(..) {
            let at = self
                .sent
                .remove(&resp.id)
                .expect("response for unknown request");
            let lat_ns = tick::to_ns(resp.ready_at.saturating_sub(at)).round() as u64;
            if resp.cmd.is_read() {
                self.read_lat.record(lat_ns);
                self.reads += 1;
            } else {
                self.write_lat.record(lat_ns);
                self.writes += 1;
            }
        }
    }

    /// Pulls the next request and injects it, advancing the controller
    /// under backpressure. Returns `false` when the generator is exhausted
    /// or proposes an injection past `until` — the run is then ready for
    /// [`finish`](Self::finish).
    pub fn step<C: Controller>(
        &mut self,
        gen: &mut impl TrafficGen,
        ctrl: &mut C,
        until: Tick,
    ) -> bool {
        if self.done {
            return false;
        }
        let Some((t, req)) = gen.next_request() else {
            self.done = true;
            return false;
        };
        if t > until {
            self.done = true;
            return false;
        }
        self.injected += 1;
        self.now = self.now.max(t);
        ctrl.advance_to(self.now, &mut self.out);
        self.absorb();
        loop {
            match ctrl.try_send(req, self.now) {
                Ok(()) => {
                    self.sent.insert(req.id, self.now);
                    return true;
                }
                Err(Rejected::TooLarge) => {
                    self.dropped += 1;
                    return true;
                }
                Err(Rejected::Full) => {
                    self.stalls += 1;
                    let next = ctrl.next_event().unwrap_or_else(|| {
                        panic!(
                            "simulation stalled at tick {}: controller rejected a \
                             request as Full but schedules no event to drain it \
                             (queued work with no way forward)",
                            self.now
                        )
                    });
                    self.now = self.now.max(next);
                    if self.now > until {
                        self.dropped += 1;
                        self.done = true;
                        return false;
                    }
                    ctrl.advance_to(self.now, &mut self.out);
                    self.absorb();
                }
            }
        }
    }

    /// Drains outstanding work and produces the summary.
    pub fn finish<C: Controller>(mut self, ctrl: &mut C) -> TestSummary {
        let end = ctrl.drain(&mut self.out).max(self.now);
        self.absorb();
        debug_assert!(self.sent.is_empty(), "all requests must be answered");

        let stats = ctrl.common_stats();
        TestSummary {
            duration: end,
            reads_completed: self.reads,
            writes_completed: self.writes,
            dropped: self.dropped,
            inject_stalls: self.stalls,
            read_lat_ns: self.read_lat,
            write_lat_ns: self.write_lat,
            bus_util: stats.bus_utilisation(end),
            bandwidth_gbps: if end == 0 {
                0.0
            } else {
                (stats.bytes_read + stats.bytes_written) as f64 / tick::to_s(end) / 1e9
            },
            ctrl: stats,
        }
    }
}

fn save_histogram(w: &mut SnapWriter, h: &Histogram) {
    let p = h.to_parts();
    w.u64(p.min);
    w.u64(p.max);
    w.usize(p.buckets.len());
    for &b in &p.buckets {
        w.u64(b);
    }
    w.u64(p.underflow);
    w.u64(p.overflow);
    w.f64(p.sum);
    w.f64(p.sum_sq);
    w.u64(p.count);
    w.u64(p.sample_min);
    w.u64(p.sample_max);
}

fn read_histogram(r: &mut SnapReader<'_>) -> Result<Histogram, SnapError> {
    let min = r.u64()?;
    let max = r.u64()?;
    let n = r.usize()?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(r.u64()?);
    }
    let parts = HistogramParts {
        min,
        max,
        buckets,
        underflow: r.u64()?,
        overflow: r.u64()?,
        sum: r.f64()?,
        sum_sq: r.f64()?,
        count: r.u64()?,
        sample_min: r.u64()?,
        sample_max: r.u64()?,
    };
    Histogram::from_parts(parts).map_err(SnapError::Corrupt)
}

impl SnapState for TestRun {
    fn save_state(&self, w: &mut SnapWriter) {
        debug_assert!(self.out.is_empty(), "responses pending mid-step");
        save_histogram(w, &self.read_lat);
        save_histogram(w, &self.write_lat);
        w.usize(self.sent.len());
        for (&id, &at) in &self.sent {
            w.u64(id.0);
            w.u64(at);
        }
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.dropped);
        w.u64(self.stalls);
        w.u64(self.now);
        w.u64(self.injected);
        w.bool(self.done);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.read_lat = read_histogram(r)?;
        self.write_lat = read_histogram(r)?;
        let n = r.usize()?;
        self.sent.clear();
        for _ in 0..n {
            let id = ReqId(r.u64()?);
            let at = r.u64()?;
            if self.sent.insert(id, at).is_some() {
                return Err(SnapError::Corrupt(format!(
                    "duplicate outstanding request id {}",
                    id.0
                )));
            }
        }
        self.out.clear();
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.dropped = r.u64()?;
        self.stalls = r.u64()?;
        self.now = r.u64()?;
        self.injected = r.u64()?;
        self.done = r.bool()?;
        Ok(())
    }
}
