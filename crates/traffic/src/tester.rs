//! The measurement harness that drives a generator into a controller.

use std::collections::HashMap;

use crate::TrafficGen;
use dramctrl_kernel::{tick, Tick};
use dramctrl_mem::{CommonStats, Controller, MemResponse, Rejected, ReqId};
use dramctrl_stats::Histogram;

/// Drives a [`TrafficGen`] into a [`Controller`] with flow control and
/// measures what the paper's validation plots need: end-to-end latency
/// distributions (Figures 6–7) and achieved bandwidth / bus utilisation
/// (Figures 3–5). Latency is measured *from the traffic generator*,
/// including queueing, exactly as in paper Section III-C2.
///
/// # Example
/// ```
/// use dramctrl::{CtrlConfig, DramCtrl};
/// use dramctrl_mem::presets;
/// use dramctrl_traffic::{LinearGen, Tester};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = DramCtrl::new(CtrlConfig::new(presets::ddr3_1333_x64()))?;
/// let mut gen = LinearGen::new(0, 1 << 20, 64, 100, 6_000, 1_000, 1);
/// let summary = Tester::new(2_000, 200).run(&mut gen, &mut ctrl);
/// assert_eq!(summary.reads_completed, 1_000);
/// assert!(summary.bus_util > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tester {
    max_lat_ns: u64,
    buckets: usize,
}

/// The results of a [`Tester`] run.
#[derive(Debug, Clone)]
pub struct TestSummary {
    /// Tick at which the run (including the final drain) completed.
    pub duration: Tick,
    /// Read responses received.
    pub reads_completed: u64,
    /// Write acknowledgements received.
    pub writes_completed: u64,
    /// Requests dropped because they could never fit the controller.
    pub dropped: u64,
    /// Injection attempts that hit controller backpressure.
    pub inject_stalls: u64,
    /// End-to-end read latency distribution, in nanoseconds.
    pub read_lat_ns: Histogram,
    /// End-to-end write-acknowledgement latency distribution, in
    /// nanoseconds.
    pub write_lat_ns: Histogram,
    /// Controller statistics snapshot at the end of the run.
    pub ctrl: CommonStats,
    /// Data-bus utilisation over the run.
    pub bus_util: f64,
    /// Achieved bandwidth in GB/s over the run.
    pub bandwidth_gbps: f64,
}

impl Tester {
    /// Creates a tester whose latency histograms span `[0, max_lat_ns)` ns
    /// with `buckets` bins.
    ///
    /// # Panics
    /// Panics if `max_lat_ns` does not divide evenly into `buckets`.
    pub fn new(max_lat_ns: u64, buckets: usize) -> Self {
        // Validate eagerly so misconfiguration fails before a long run.
        let _ = Histogram::new(0, max_lat_ns, buckets);
        Self {
            max_lat_ns,
            buckets,
        }
    }

    /// Runs the full generator stream through `ctrl` and drains.
    pub fn run<C: Controller>(&self, gen: &mut impl TrafficGen, ctrl: &mut C) -> TestSummary {
        self.run_until(gen, ctrl, Tick::MAX)
    }

    /// Runs until the generator is exhausted or proposes an injection past
    /// `until`, then drains outstanding work.
    pub fn run_until<C: Controller>(
        &self,
        gen: &mut impl TrafficGen,
        ctrl: &mut C,
        until: Tick,
    ) -> TestSummary {
        let mut read_lat = Histogram::new(0, self.max_lat_ns, self.buckets);
        let mut write_lat = Histogram::new(0, self.max_lat_ns, self.buckets);
        let mut sent: HashMap<ReqId, Tick> = HashMap::new();
        let mut out: Vec<MemResponse> = Vec::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut dropped = 0u64;
        let mut stalls = 0u64;
        let mut now: Tick = 0;

        let consume = |out: &mut Vec<MemResponse>,
                       sent: &mut HashMap<ReqId, Tick>,
                       read_lat: &mut Histogram,
                       write_lat: &mut Histogram,
                       reads: &mut u64,
                       writes: &mut u64| {
            for resp in out.drain(..) {
                let at = sent.remove(&resp.id).expect("response for unknown request");
                let lat_ns = tick::to_ns(resp.ready_at.saturating_sub(at)).round() as u64;
                if resp.cmd.is_read() {
                    read_lat.record(lat_ns);
                    *reads += 1;
                } else {
                    write_lat.record(lat_ns);
                    *writes += 1;
                }
            }
        };

        'inject: while let Some((t, req)) = gen.next_request() {
            if t > until {
                break;
            }
            now = now.max(t);
            ctrl.advance_to(now, &mut out);
            consume(
                &mut out,
                &mut sent,
                &mut read_lat,
                &mut write_lat,
                &mut reads,
                &mut writes,
            );
            loop {
                match ctrl.try_send(req, now) {
                    Ok(()) => {
                        sent.insert(req.id, now);
                        break;
                    }
                    Err(Rejected::TooLarge) => {
                        dropped += 1;
                        break;
                    }
                    Err(Rejected::Full) => {
                        stalls += 1;
                        let next = ctrl.next_event().unwrap_or_else(|| {
                            panic!(
                                "simulation stalled at tick {now}: controller rejected a \
                                 request as Full but schedules no event to drain it \
                                 (queued work with no way forward)"
                            )
                        });
                        now = now.max(next);
                        if now > until {
                            dropped += 1;
                            break 'inject;
                        }
                        ctrl.advance_to(now, &mut out);
                        consume(
                            &mut out,
                            &mut sent,
                            &mut read_lat,
                            &mut write_lat,
                            &mut reads,
                            &mut writes,
                        );
                    }
                }
            }
        }

        let end = ctrl.drain(&mut out).max(now);
        consume(
            &mut out,
            &mut sent,
            &mut read_lat,
            &mut write_lat,
            &mut reads,
            &mut writes,
        );
        debug_assert!(sent.is_empty(), "all requests must be answered");

        let stats = ctrl.common_stats();
        TestSummary {
            duration: end,
            reads_completed: reads,
            writes_completed: writes,
            dropped,
            inject_stalls: stalls,
            read_lat_ns: read_lat,
            write_lat_ns: write_lat,
            bus_util: stats.bus_utilisation(end),
            bandwidth_gbps: if end == 0 {
                0.0
            } else {
                (stats.bytes_read + stats.bytes_written) as f64 / tick::to_s(end) / 1e9
            },
            ctrl: stats,
        }
    }
}

impl Default for Tester {
    /// A tester with a 2 us / 200-bucket latency histogram.
    fn default() -> Self {
        Self::new(2_000, 200)
    }
}
