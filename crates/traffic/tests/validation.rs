//! Small-scale versions of the paper's validation experiments (Section
//! III), asserting the qualitative *shapes* of Figures 3–7 and the
//! first-order agreement between the event-based model and the cycle-based
//! baseline.

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy};
use dramctrl_mem::{presets, AddrMapping};
use dramctrl_traffic::{DramAwareGen, LinearGen, TestSummary, Tester};

const N: u64 = 2_000;

fn ev(policy: PagePolicy, mapping: AddrMapping) -> DramCtrl {
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    DramCtrl::new(cfg).unwrap()
}

fn cy(policy: CyclePagePolicy, mapping: AddrMapping) -> CycleCtrl {
    let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
    cfg.page_policy = policy;
    cfg.mapping = mapping;
    CycleCtrl::new(cfg).unwrap()
}

fn aware(mapping: AddrMapping, stride: u64, banks: u32, read_pct: u8) -> DramAwareGen {
    DramAwareGen::new(
        presets::ddr3_1333_x64().org,
        mapping,
        1,
        0,
        stride,
        banks,
        read_pct,
        0,
        N,
        7,
    )
}

/// Utilisation of both models on the fig3 workload (open page, reads).
fn fig3_point(stride: u64, banks: u32) -> (f64, f64) {
    let m = AddrMapping::RoRaBaCoCh;
    let t = Tester::new(50_000, 500);
    let e = t.run(
        &mut aware(m, stride, banks, 100),
        &mut ev(PagePolicy::Open, m),
    );
    let c = t.run(
        &mut aware(m, stride, banks, 100),
        &mut cy(CyclePagePolicy::Open, m),
    );
    (e.bus_util, c.bus_util)
}

/// Utilisation of both models on the fig5 workload (closed page, writes).
fn fig5_point(stride: u64, banks: u32) -> (f64, f64) {
    let m = AddrMapping::RoCoRaBaCh;
    let t = Tester::new(50_000, 500);
    let e = t.run(
        &mut aware(m, stride, banks, 0),
        &mut ev(PagePolicy::Closed, m),
    );
    let c = t.run(
        &mut aware(m, stride, banks, 0),
        &mut cy(CyclePagePolicy::Closed, m),
    );
    (e.bus_util, c.bus_util)
}

#[test]
fn fig3_util_rises_with_stride() {
    // Longer sequential strides raise the row-hit rate and thus bus
    // utilisation under an open-page policy, for both models.
    let points: Vec<_> = [1, 4, 16, 128].iter().map(|&s| fig3_point(s, 1)).collect();
    for w in points.windows(2) {
        assert!(w[1].0 > w[0].0, "event model: {points:?}");
        assert!(w[1].1 > w[0].1, "cycle model: {points:?}");
    }
    // Full-page strides saturate the bus (paper: ~90%).
    let (e, c) = fig3_point(128, 8);
    assert!(e > 0.9, "event saturation {e}");
    assert!(c > 0.9, "cycle saturation {c}");
}

#[test]
fn fig3_util_rises_with_banks() {
    let points: Vec<_> = [1, 2, 4, 8].iter().map(|&b| fig3_point(1, b)).collect();
    for w in points.windows(2) {
        assert!(w[1].0 > w[0].0, "event model: {points:?}");
        assert!(w[1].1 > w[0].1, "cycle model: {points:?}");
    }
}

#[test]
fn fig3_models_agree() {
    for (stride, banks) in [(1, 1), (4, 2), (16, 4), (128, 8)] {
        let (e, c) = fig3_point(stride, banks);
        let diff = (e - c).abs() / c.max(1e-9);
        assert!(
            diff < 0.15,
            "stride {stride}, banks {banks}: ev {e:.3} vs cy {c:.3}"
        );
    }
}

#[test]
fn fig5_single_bank_is_trc_bound() {
    // Closed page, one bank: every access pays the full bank cycle, so
    // utilisation is low and independent of stride.
    let (e1, c1) = fig5_point(1, 1);
    let (e2, c2) = fig5_point(64, 1);
    assert!(e1 < 0.15 && c1 < 0.15, "ev {e1}, cy {c1}");
    assert!((e1 - e2).abs() < 0.02);
    assert!((c1 - c2).abs() < 0.02);
}

#[test]
fn fig5_banks_improve_and_stride_hurts() {
    // Bank-level parallelism improves utilisation for both models...
    let (e1, _) = fig5_point(1, 1);
    let (e4, c4) = fig5_point(1, 4);
    let (e8, c8) = fig5_point(1, 8);
    assert!(e4 > 2.0 * e1, "4 banks should give ~4x: {e1} -> {e4}");
    assert!(e8 > e4 && c8 > c4);
    // ...and longer strides concentrate work on one bank at a time,
    // reducing the parallelism visible in the queues (paper: utilisation
    // decreases with stride under the closed-page policy).
    let (e_s4, c_s4) = fig5_point(4, 8);
    let (e_s128, c_s128) = fig5_point(128, 8);
    assert!(e_s128 < e_s4, "event: {e_s4} -> {e_s128}");
    assert!(c_s128 < c_s4, "cycle: {c_s4} -> {c_s128}");
    // The event model's buffered write drain gives it a wider reorder
    // window: it never does worse than the interleaving baseline (the
    // paper saw DRAMSim2 ~15% lower at high bank counts).
    assert!(e8 >= c8 * 0.99, "ev {e8} vs cy {c8}");
}

#[test]
fn fig6_read_latency_distributions_match() {
    // Linear read-only traffic, open page: both models produce a tight,
    // unimodal distribution with closely matching means.
    let run_ev = |_| {
        let mut gen = LinearGen::new(0, 1 << 22, 64, 100, 10_000, N, 3);
        Tester::new(2_000, 40).run(&mut gen, &mut ev(PagePolicy::Open, AddrMapping::RoRaBaCoCh))
    };
    let run_cy = |_| {
        let mut gen = LinearGen::new(0, 1 << 22, 64, 100, 10_000, N, 3);
        Tester::new(2_000, 40).run(
            &mut gen,
            &mut cy(CyclePagePolicy::Open, AddrMapping::RoRaBaCoCh),
        )
    };
    let (e, c): (TestSummary, TestSummary) = (run_ev(()), run_cy(()));
    let (em, cm) = (e.read_lat_ns.mean(), c.read_lat_ns.mean());
    assert!((em - cm).abs() / cm < 0.1, "means {em:.1} vs {cm:.1}");
    // Tight distributions: the bulk of reads cluster (the only outliers
    // are the occasional refresh-delayed reads, under 5% of samples).
    for s in [&e, &c] {
        let p50 = s.read_lat_ns.quantile(0.5).unwrap();
        let p95 = s.read_lat_ns.quantile(0.95).unwrap();
        assert!(p95 <= 2 * p50, "p50={p50} p95={p95}");
    }
    // Under light load the latency sits near the ideal tRCD+tCL+tBURST.
    assert!((20.0..45.0).contains(&em), "event mean {em}");
}

#[test]
fn fig7_write_drain_spreads_read_latency() {
    // Linear 1:1 mixed traffic, closed page. The event-based model's write
    // drain creates two populations of reads: those serviced immediately
    // and those stalled behind a drain episode (the paper's bimodal
    // distribution). The cycle model interleaves reads and writes, paying
    // turnarounds on most accesses instead.
    let mk_gen = || LinearGen::new(0, 1 << 22, 64, 50, 10_000, N, 3);
    let t = Tester::new(4_000, 100);
    let e = t.run(
        &mut mk_gen(),
        &mut ev(PagePolicy::Closed, AddrMapping::RoCoRaBaCh),
    );
    let c = t.run(
        &mut mk_gen(),
        &mut cy(CyclePagePolicy::Closed, AddrMapping::RoCoRaBaCh),
    );
    // Wide spread for the event model: the 90th percentile read waited for
    // a write drain, the 10th did not.
    let p10 = e.read_lat_ns.quantile(0.1).unwrap() as f64;
    let p90 = e.read_lat_ns.quantile(0.9).unwrap() as f64;
    assert!(p90 > 2.0 * p10, "event spread p10={p10} p90={p90}");
    // Interleaving writes costs the cycle model more on average.
    assert!(
        c.read_lat_ns.mean() > e.read_lat_ns.mean(),
        "cy {:.1} vs ev {:.1}",
        c.read_lat_ns.mean(),
        e.read_lat_ns.mean()
    );
    // Both models achieve the same throughput (all requests completed).
    assert_eq!(e.reads_completed + e.writes_completed, N);
    assert_eq!(c.reads_completed + c.writes_completed, N);
}

#[test]
fn refresh_overhead_costs_utilisation() {
    // With refresh enabled, long runs lose roughly tRFC/tREFI of
    // utilisation (~2% for DDR3-1333) compared to a refresh-free device.
    let m = AddrMapping::RoRaBaCoCh;
    let gen = || {
        DramAwareGen::new(
            presets::ddr3_1333_x64().org,
            m,
            1,
            0,
            128,
            8,
            100,
            0,
            20_000,
            7,
        )
    };
    let t = Tester::new(50_000, 500);
    let with_refresh = t.run(&mut gen(), &mut ev(PagePolicy::Open, m));
    let mut cfg = CtrlConfig::new(presets::ddr3_1333_x64());
    cfg.mapping = m;
    cfg.spec.timing.t_refi = 0;
    let mut no_refresh_ctrl = DramCtrl::new(cfg).unwrap();
    let no_refresh = t.run(&mut gen(), &mut no_refresh_ctrl);
    let loss = no_refresh.bus_util - with_refresh.bus_util;
    assert!(
        (0.005..0.05).contains(&loss),
        "refresh utilisation loss {loss:.4} ({} vs {})",
        with_refresh.bus_util,
        no_refresh.bus_util
    );
}
