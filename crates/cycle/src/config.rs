//! Configuration of the cycle-based baseline controller.

use dramctrl_mem::{AddrMapping, MemSpec};
use dramctrl_ras::RasConfig;
use std::fmt;

/// Row-buffer policy of the baseline (DRAMSim2 offers open and closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CyclePagePolicy {
    /// Rows stay open until a conflict.
    #[default]
    Open,
    /// Auto-precharge after every column access.
    Closed,
}

impl fmt::Display for CyclePagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CyclePagePolicy::Open => "open",
            CyclePagePolicy::Closed => "closed",
        })
    }
}

/// Transaction scheduling policy of the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CycleSched {
    /// Strict in-order service (head-of-line blocking).
    Fcfs,
    /// First-ready FCFS over the unified transaction queue.
    #[default]
    FrFcfs,
}

/// Configuration of the cycle-based controller.
///
/// Deliberately mirrors DRAMSim2's architecture rather than the event-based
/// model's: one *unified* transaction queue shared by reads and writes, no
/// write-drain watermarks and — by default — no write merging and no read
/// forwarding. These are exactly the architectural differences the paper's
/// validation discusses (Sections II-A and III). [`write_snooping`]
/// (CycleConfig::write_snooping) optionally lifts the last difference for
/// apples-to-apples model comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleConfig {
    /// The DRAM device behind this controller.
    pub spec: MemSpec,
    /// Unified transaction-queue depth, in bursts.
    pub queue_depth: usize,
    /// Address decoding scheme.
    pub mapping: AddrMapping,
    /// Row-buffer policy.
    pub page_policy: CyclePagePolicy,
    /// Scheduling policy.
    pub scheduling: CycleSched,
    /// Number of channels interleaved upstream (skipped in decode).
    pub channels: u32,
    /// Snoop queued writes on arrival: merge fully-covered incoming
    /// writes and forward fully-covered incoming reads, exactly as the
    /// event-based model does (paper Section II-A), using the same O(1)
    /// coverage index.
    ///
    /// Off by default — DRAMSim2 has no write snooping, and the baseline's
    /// job is to mirror it. Turn it on when comparing the two models'
    /// *simulation speed* so both service the same burst stream.
    pub write_snooping: bool,
    /// Optional RAS model: deterministic fault injection, ECC
    /// classification and link-error retry, mirroring the event-based
    /// model. `None` (the default) leaves the controller byte-identical to
    /// a build without the RAS subsystem.
    pub ras: Option<RasConfig>,
}

impl CycleConfig {
    /// A configuration with DRAMSim2-like defaults: a 64-entry unified
    /// queue, FR-FCFS, `RoRaBaCoCh`, open page, single channel.
    pub fn new(spec: MemSpec) -> Self {
        Self {
            spec,
            queue_depth: 64,
            mapping: AddrMapping::RoRaBaCoCh,
            page_policy: CyclePagePolicy::Open,
            scheduling: CycleSched::FrFcfs,
            channels: 1,
            write_snooping: false,
            ras: None,
        }
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    /// Returns an error naming the violated invariant (invalid spec, empty
    /// queue or zero channels).
    pub fn validate(&self) -> Result<(), CycleConfigError> {
        self.spec
            .validate()
            .map_err(|e| CycleConfigError(e.to_string()))?;
        if self.queue_depth == 0 {
            return Err(CycleConfigError("queue_depth must be positive".into()));
        }
        if self.channels == 0 {
            return Err(CycleConfigError("channels must be positive".into()));
        }
        if let Some(ras) = &self.ras {
            ras.validate()
                .map_err(|e| CycleConfigError(e.to_string()))?;
        }
        Ok(())
    }
}

/// Invalid cycle-controller configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleConfigError(pub(crate) String);

impl fmt::Display for CycleConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cycle controller config: {}", self.0)
    }
}

impl std::error::Error for CycleConfigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_mem::presets;

    #[test]
    fn defaults_valid_for_all_presets() {
        for spec in presets::all() {
            CycleConfig::new(spec).validate().unwrap();
        }
    }

    #[test]
    fn rejects_zero_depth() {
        let mut c = CycleConfig::new(presets::ddr3_1333_x64());
        c.queue_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn policy_names() {
        assert_eq!(CyclePagePolicy::Open.to_string(), "open");
        assert_eq!(CyclePagePolicy::Closed.to_string(), "closed");
    }
}
