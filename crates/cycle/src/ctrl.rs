//! The cycle-by-cycle controller.
//!
//! Faithful to the *structure* of DRAMSim2 (the paper's comparison
//! baseline): a unified transaction queue, per-bank down-counter state
//! machines, one DRAM command per clock cycle, and an `update()` that runs
//! every memory-clock cycle while any work is pending. The per-cycle
//! execution is precisely what makes this model slow relative to the
//! event-based controller — the property measured in paper Section III-D.

use std::collections::VecDeque;

use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::{Clock, EventQueue, Tick};
use dramctrl_mem::{
    snapio, ActivityStats, CommonStats, Controller, DramAddr, MemCmd, MemRequest, MemResponse,
    MemSpec, Rejected, WriteCoverage,
};
use dramctrl_obs::{CmdEvent, DramCmd, NoProbe, Probe, RasMark};
use dramctrl_ras::{BurstOutcome, FaultModel, RasGeometry};
use dramctrl_stats::{Average, Report};

use crate::config::{CycleConfig, CycleConfigError, CyclePagePolicy, CycleSched};

/// Timing parameters converted to memory-clock cycles.
#[derive(Debug, Clone, Copy)]
struct CycTiming {
    burst: u64,
    rcd: u64,
    cl: u64,
    rp: u64,
    ras: u64,
    wr: u64,
    rtp: u64,
    rrd: u64,
    xaw: u64,
    act_limit: u32,
    wtr: u64,
    rtw: u64,
    rfc: u64,
    refi: u64,
}

impl CycTiming {
    fn from_spec(spec: &MemSpec, clk: &Clock) -> Self {
        let t = &spec.timing;
        let c = |x| clk.to_cycles_ceil(x);
        Self {
            burst: c(t.t_burst),
            rcd: c(t.t_rcd),
            cl: c(t.t_cl),
            rp: c(t.t_rp),
            ras: c(t.t_ras),
            wr: c(t.t_wr),
            rtp: c(t.t_rtp),
            rrd: c(t.t_rrd),
            xaw: c(t.t_xaw),
            act_limit: t.activation_limit,
            wtr: c(t.t_wtr),
            rtw: c(t.t_rtw),
            rfc: c(t.t_rfc),
            refi: if t.t_refi == 0 { 0 } else { c(t.t_refi) },
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CycBank {
    open_row: Option<u64>,
    next_act: u64,
    next_pre: u64,
    next_col: u64,
    /// Cycle at which a scheduled auto-precharge takes effect (row already
    /// marked closed for scheduling purposes).
    pending_close: Option<u64>,
    /// Cycle at which the most recent precharge completes.
    pre_done: u64,
}

impl CycBank {
    fn is_physically_open(&self, cycle: u64) -> bool {
        self.open_row.is_some() || self.pending_close.is_some_and(|p| cycle < p)
    }
}

#[derive(Debug, Clone)]
struct CycRank {
    banks: Vec<CycBank>,
    act_times: VecDeque<u64>,
    next_act_rank: u64,
    refresh_due: u64,
    want_refresh: bool,
    refreshing_until: u64,
    closed_cycles: u64,
}

impl CycRank {
    fn new(banks: u32, refi: u64) -> Self {
        Self {
            banks: vec![CycBank::default(); banks as usize],
            act_times: VecDeque::new(),
            next_act_rank: 0,
            refresh_due: if refi == 0 { u64::MAX } else { refi },
            want_refresh: false,
            refreshing_until: 0,
            closed_cycles: 0,
        }
    }

    fn act_allowed(&self, cycle: u64, t: &CycTiming) -> bool {
        if cycle < self.next_act_rank {
            return false;
        }
        if t.act_limit == 0 || (self.act_times.len() as u32) < t.act_limit {
            return true;
        }
        let oldest = self.act_times[self.act_times.len() - t.act_limit as usize];
        cycle >= oldest + t.xaw
    }

    fn record_act(&mut self, cycle: u64, t: &CycTiming) {
        self.next_act_rank = self.next_act_rank.max(cycle + t.rrd);
        if t.act_limit > 0 {
            self.act_times.push_back(cycle);
            while self.act_times.len() > t.act_limit as usize {
                self.act_times.pop_front();
            }
        }
    }

    fn blocked(&self, cycle: u64) -> bool {
        self.want_refresh || cycle < self.refreshing_until
    }
}

/// One DRAM burst in the unified transaction queue.
#[derive(Debug, Clone)]
struct Txn {
    is_read: bool,
    da: DramAddr,
    /// Burst-aligned base address (keys the write-coverage index).
    burst_addr: u64,
    /// Covered byte range within the burst, relative to `burst_addr`.
    lo: u32,
    /// Exclusive end of the covered range.
    hi: u32,
    entry: Tick,
    group: usize,
    /// Whether this transaction triggered its own activation (a burst is a
    /// row hit only if the row was open on someone else's behalf).
    activated: bool,
    /// Link-error replays already made for this burst (RAS; always 0
    /// without a fault model).
    retries: u8,
    /// Earliest cycle at which this transaction may issue again — the
    /// retry backoff of the RAS model (0 without one).
    not_before: u64,
}

#[derive(Debug, Clone)]
struct Group {
    req: MemRequest,
    remaining: u32,
    ready_at: Tick,
}

/// Bus direction of the most recent data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Rd,
    Wr,
}

/// Statistics of the cycle-based controller.
#[derive(Debug, Clone, Default)]
pub struct CycleStats {
    /// Read requests accepted.
    pub reads_accepted: u64,
    /// Write requests accepted.
    pub writes_accepted: u64,
    /// Read bursts serviced.
    pub rd_bursts: u64,
    /// Write bursts serviced.
    pub wr_bursts: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Row activations.
    pub activates: u64,
    /// Precharges.
    pub precharges: u64,
    /// Refreshes.
    pub refreshes: u64,
    /// Accumulated data-bus busy time (ticks).
    pub bus_busy: Tick,
    /// Incoming writes dropped because a queued write already covered
    /// them (only with `write_snooping`).
    pub merged_writes: u64,
    /// Incoming read bursts serviced from the queued write data (only
    /// with `write_snooping`).
    pub forwarded_reads: u64,
    /// Total clock cycles executed by the model (the cost of being
    /// cycle-based).
    pub cycles_simulated: u64,
    /// Read latency from acceptance to data, in ticks.
    pub read_lat: Average,
}

/// The cycle-based DRAMSim2-style controller.
///
/// Implements the same pull interface as the event-based model (the
/// [`Controller`] trait), so identical harnesses drive both. Like the
/// event-based model, the controller carries a `dramctrl-obs` probe type
/// parameter; the default [`NoProbe`] compiles all instrumentation away,
/// and [`with_probe`](Self::with_probe) attaches a live sink without
/// perturbing the simulation.
///
/// # Example
/// ```
/// use dramctrl_cycle::{CycleConfig, CycleCtrl};
/// use dramctrl_mem::{presets, Controller, MemRequest, ReqId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = CycleCtrl::new(CycleConfig::new(presets::ddr3_1333_x64()))?;
/// ctrl.try_send(MemRequest::read(ReqId(0), 0x40, 64), 0)?;
/// let mut out = Vec::new();
/// ctrl.drain(&mut out);
/// assert_eq!(out.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CycleCtrl<P: Probe = NoProbe> {
    cfg: CycleConfig,
    probe: P,
    clk: Clock,
    t: CycTiming,
    cycle: u64,
    queue: VecDeque<Txn>,
    groups: Vec<Option<Group>>,
    free_groups: Vec<usize>,
    ranks: Vec<CycRank>,
    resp_q: EventQueue<MemResponse>,
    bus_free: u64,
    last_data_end: u64,
    last_dir: Option<Dir>,
    pending_closes: usize,
    /// Coverage of queued writes; only maintained with `write_snooping`.
    coverage: WriteCoverage,
    /// RAS fault model, when configured (`None` is byte-identical to the
    /// pre-RAS controller).
    fault: Option<FaultModel>,
    stats: CycleStats,
}

impl CycleCtrl {
    /// Creates an uninstrumented controller for the given configuration.
    ///
    /// # Errors
    /// Returns a [`CycleConfigError`] if the configuration is inconsistent.
    pub fn new(cfg: CycleConfig) -> Result<Self, CycleConfigError> {
        Self::with_probe(cfg, NoProbe)
    }
}

impl<P: Probe> CycleCtrl<P> {
    /// Creates a controller with an attached instrumentation probe (see
    /// the type-level docs for the zero-perturbation contract).
    ///
    /// # Errors
    /// Returns a [`CycleConfigError`] if the configuration is inconsistent.
    pub fn with_probe(cfg: CycleConfig, probe: P) -> Result<Self, CycleConfigError> {
        cfg.validate()?;
        let clk = Clock::from_period(cfg.spec.timing.t_ck);
        let t = CycTiming::from_spec(&cfg.spec, &clk);
        let ranks = (0..cfg.spec.org.ranks)
            .map(|_| CycRank::new(cfg.spec.org.banks, t.refi))
            .collect();
        let queue = VecDeque::with_capacity(cfg.queue_depth);
        let resp_q = EventQueue::with_capacity(cfg.queue_depth);
        let org = &cfg.spec.org;
        let fault = cfg.ras.clone().map(|ras| {
            FaultModel::new(
                ras,
                RasGeometry {
                    ranks: org.ranks,
                    banks: org.banks,
                    row_bytes: org.row_buffer_bytes(),
                    rank_bytes: org.capacity_bytes() / u64::from(org.ranks),
                },
            )
        });
        Ok(Self {
            cfg,
            probe,
            clk,
            t,
            cycle: 0,
            queue,
            groups: Vec::new(),
            free_groups: Vec::new(),
            ranks,
            resp_q,
            bus_free: 0,
            last_data_end: 0,
            last_dir: None,
            pending_closes: 0,
            coverage: WriteCoverage::default(),
            fault,
            stats: CycleStats::default(),
        })
    }

    /// The controller's configuration.
    pub fn config(&self) -> &CycleConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CycleStats {
        &self.stats
    }

    /// The RAS fault model, when one is configured.
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// The attached instrumentation probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the probe (e.g. to close an epoch recorder).
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the controller, returning the probe and its recordings.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Read/write transaction counts for the queue-depth probe. Only
    /// evaluated when a live probe is attached.
    fn probe_queue_depth(&mut self, now: Tick) {
        if P::ENABLED {
            let reads = self.queue.iter().filter(|t| t.is_read).count();
            self.probe.queue_depth(reads, self.queue.len() - reads, now);
        }
    }

    fn burst_count(&self, addr: u64, size: u32) -> usize {
        let bb = self.cfg.spec.org.burst_bytes();
        let first = addr / bb;
        let last = (addr + u64::from(size)).div_ceil(bb);
        (last - first) as usize
    }

    fn alloc_group(&mut self, g: Group) -> usize {
        if let Some(i) = self.free_groups.pop() {
            self.groups[i] = Some(g);
            i
        } else {
            self.groups.push(Some(g));
            self.groups.len() - 1
        }
    }

    // --------------------------------------------------------------
    // Per-cycle update (the DRAMSim2-style core loop)
    // --------------------------------------------------------------

    /// Whether per-cycle work is pending.
    fn busy(&self) -> bool {
        !self.queue.is_empty()
            || self.pending_closes > 0
            || self
                .ranks
                .iter()
                .any(|r| r.want_refresh || self.cycle < r.refreshing_until)
    }

    /// Executes one memory-clock cycle.
    fn tick(&mut self) {
        self.cycle += 1;
        let c = self.cycle;
        self.stats.cycles_simulated += 1;

        // Expire pending auto-precharges and refresh completions; arm
        // refreshes that became due. (A real cycle-based model walks all
        // bank state machines every cycle; so do we.)
        for rank in &mut self.ranks {
            for bank in &mut rank.banks {
                if bank.pending_close.is_some_and(|p| c >= p) {
                    bank.pending_close = None;
                    self.pending_closes -= 1;
                }
            }
            if !rank.want_refresh && c >= rank.refreshing_until && c >= rank.refresh_due {
                rank.want_refresh = true;
                rank.refresh_due = rank.refresh_due.saturating_add(self.t.refi);
            }
        }

        // One command slot per cycle.
        self.issue_one(c);

        // Power accounting: a rank contributes "all banks precharged" time
        // when no bank is physically open this cycle.
        for rank in &mut self.ranks {
            if rank.banks.iter().all(|b| !b.is_physically_open(c)) {
                rank.closed_cycles += 1;
            }
        }
    }

    fn issue_one(&mut self, c: u64) {
        // Refresh has priority: start a due refresh, or precharge towards
        // it.
        for ri in 0..self.ranks.len() {
            if !self.ranks[ri].want_refresh || c < self.ranks[ri].refreshing_until {
                continue;
            }
            let all_closed = self.ranks[ri]
                .banks
                .iter()
                .all(|b| b.open_row.is_none() && b.pending_close.is_none() && c >= b.pre_done);
            if all_closed {
                let rank = &mut self.ranks[ri];
                rank.want_refresh = false;
                rank.refreshing_until = c + self.t.rfc;
                for bank in &mut rank.banks {
                    bank.next_act = bank.next_act.max(rank.refreshing_until);
                }
                rank.next_act_rank = rank.next_act_rank.max(rank.refreshing_until);
                self.stats.refreshes += 1;
                if P::ENABLED {
                    self.probe.dram_cmd(CmdEvent::refresh(
                        ri as u32,
                        self.clk.cycles(c),
                        self.clk.cycles(self.t.rfc),
                    ));
                }
                return;
            }
            // Precharge the first open bank that is ready.
            let t_rp = self.t.rp;
            let rank = &mut self.ranks[ri];
            if let Some(bi) = rank
                .banks
                .iter()
                .position(|b| b.open_row.is_some() && c >= b.next_pre)
            {
                let bank = &mut rank.banks[bi];
                bank.open_row = None;
                bank.next_act = bank.next_act.max(c + t_rp);
                bank.pre_done = c + t_rp;
                self.stats.precharges += 1;
                if P::ENABLED {
                    self.probe.dram_cmd(CmdEvent::pre(
                        ri as u32,
                        bi as u32,
                        self.clk.cycles(c),
                        self.clk.cycles(t_rp),
                    ));
                }
                return;
            }
        }

        // Transaction scheduling.
        match self.cfg.scheduling {
            CycleSched::Fcfs => {
                if !self.queue.is_empty() {
                    self.try_progress(0, c);
                }
            }
            CycleSched::FrFcfs => {
                // Pass 1: oldest row hit whose column command is issuable.
                let hit = (0..self.queue.len()).find(|&i| self.col_issuable(i, c));
                if let Some(i) = hit {
                    self.do_col(i, c);
                    return;
                }
                // Pass 2: oldest transaction that can make *any* progress.
                for i in 0..self.queue.len() {
                    if self.try_progress(i, c) {
                        return;
                    }
                }
            }
        }
    }

    /// Whether transaction `i` is an issuable row hit at cycle `c`.
    fn col_issuable(&self, i: usize, c: u64) -> bool {
        let txn = &self.queue[i];
        if c < txn.not_before {
            return false;
        }
        let rank = &self.ranks[txn.da.rank as usize];
        if rank.blocked(c) {
            return false;
        }
        let bank = &rank.banks[txn.da.bank as usize];
        bank.open_row == Some(txn.da.row) && c >= bank.next_col && self.bus_ok(txn.is_read, c)
    }

    /// Data-bus availability and turnaround for a column command at `c`.
    fn bus_ok(&self, is_read: bool, c: u64) -> bool {
        let data_start = c + self.t.cl;
        if data_start < self.bus_free {
            return false;
        }
        match (self.last_dir, is_read) {
            (Some(Dir::Wr), true) => c >= self.last_data_end + self.t.wtr,
            (Some(Dir::Rd), false) => data_start >= self.last_data_end + self.t.rtw,
            _ => true,
        }
    }

    /// Issues the column command for transaction `i` (which must be a row
    /// hit with `bus_ok`); completes the transaction.
    fn do_col(&mut self, i: usize, c: u64) {
        let txn = self.queue.remove(i).expect("index checked by caller");
        let (ri, bi) = (txn.da.rank as usize, txn.da.bank as usize);
        if self.cfg.write_snooping && !txn.is_read {
            self.coverage.remove(txn.burst_addr, txn.lo, txn.hi);
        }
        if !txn.activated {
            self.stats.row_hits += 1;
        }
        let data_start = c + self.t.cl;
        let data_end = data_start + self.t.burst;
        self.bus_free = data_end;
        self.last_data_end = data_end;
        self.last_dir = Some(if txn.is_read { Dir::Rd } else { Dir::Wr });
        self.stats.bus_busy += self.clk.cycles(self.t.burst);
        if P::ENABLED {
            let cmd = if txn.is_read {
                DramCmd::Rd
            } else {
                DramCmd::Wr
            };
            self.probe.dram_cmd(CmdEvent {
                req: txn.is_read.then(|| {
                    self.groups[txn.group]
                        .as_ref()
                        .expect("live group")
                        .req
                        .id
                        .0
                }),
                ..CmdEvent::data(
                    cmd,
                    txn.da.rank,
                    txn.da.bank,
                    txn.da.row,
                    self.clk.cycles(data_start),
                    self.clk.cycles(self.t.burst),
                    txn.hi - txn.lo,
                    !txn.activated,
                )
            });
            self.probe_queue_depth(self.clk.cycles(c));
        }

        let t = self.t;
        let bank = &mut self.ranks[ri].banks[bi];
        bank.next_col = bank.next_col.max(c + t.burst);
        if txn.is_read {
            bank.next_pre = bank.next_pre.max(c + t.rtp);
            self.stats.rd_bursts += 1;
            self.stats.bytes_read += u64::from(txn.hi - txn.lo);
        } else {
            bank.next_pre = bank.next_pre.max(data_end + t.wr);
            self.stats.wr_bursts += 1;
            self.stats.bytes_written += u64::from(txn.hi - txn.lo);
        }

        if self.cfg.page_policy == CyclePagePolicy::Closed {
            let bank = &mut self.ranks[ri].banks[bi];
            let pre_at = bank.next_pre;
            bank.open_row = None;
            bank.pending_close = Some(pre_at);
            bank.next_act = bank.next_act.max(pre_at + t.rp);
            bank.pre_done = pre_at + t.rp;
            self.pending_closes += 1;
            self.stats.precharges += 1;
            if P::ENABLED {
                self.probe.dram_cmd(CmdEvent::pre(
                    txn.da.rank,
                    txn.da.bank,
                    self.clk.cycles(pre_at),
                    self.clk.cycles(t.rp),
                ));
            }
        }

        // Response bookkeeping.
        let ready = self.clk.cycles(data_end);
        if self.fault.is_some() && self.ras_check(&txn, ready) {
            // Link-layer error: the burst is replayed after a backoff. The
            // command and bus time are already spent; only completion is
            // withheld, so the group stays pending and the transaction
            // re-enters the unified queue (FIFO — the cycle baseline has no
            // priority lanes).
            let mut txn = txn;
            let attempt = txn.retries;
            txn.retries += 1;
            let fm = self.fault.as_mut().expect("checked above");
            fm.note_retry();
            let backoff = self.clk.to_cycles_ceil(fm.retry_delay(u32::from(attempt)));
            txn.not_before = data_end + backoff;
            if P::ENABLED {
                self.probe
                    .ras_event(txn.da.rank, txn.da.bank, txn.da.row, RasMark::Retry, ready);
            }
            if self.cfg.write_snooping && !txn.is_read {
                self.coverage.insert(txn.burst_addr, txn.lo, txn.hi);
            }
            self.queue.push_back(txn);
            return;
        }
        if txn.is_read {
            self.stats.read_lat.record((ready - txn.entry) as f64);
        }
        let group = self.groups[txn.group].as_mut().expect("live group");
        group.remaining -= 1;
        group.ready_at = group.ready_at.max(ready);
        if group.remaining == 0 {
            let group = self.groups[txn.group].take().expect("live group");
            self.free_groups.push(txn.group);
            if group.req.cmd.is_read() {
                self.resp_q.schedule(
                    group.ready_at.max(self.resp_q.now()),
                    MemResponse::to(&group.req, group.ready_at),
                );
                if P::ENABLED {
                    self.probe
                        .req_completed(group.req.id.0, true, group.ready_at);
                }
            }
        }
    }

    /// Attempts PRE/ACT/column progress for transaction `i`; returns true
    /// if a command was issued.
    fn try_progress(&mut self, i: usize, c: u64) -> bool {
        let txn = self.queue[i].clone();
        if c < txn.not_before {
            return false;
        }
        let (ri, bi) = (txn.da.rank as usize, txn.da.bank as usize);
        if self.ranks[ri].blocked(c) {
            return false;
        }
        let t = self.t;
        let open_row = self.ranks[ri].banks[bi].open_row;
        match open_row {
            Some(row) if row == txn.da.row => {
                if self.col_issuable(i, c) {
                    self.do_col(i, c);
                    true
                } else {
                    false
                }
            }
            Some(open) => {
                // Conflict: precharge, but (under FR-FCFS only) never
                // while other queued transactions still hit the open row —
                // closing it would throw their locality away; FR-FCFS will
                // serve those hits first. Under strict FCFS the head must
                // make progress unconditionally or the queue deadlocks.
                let hit_pending = self.cfg.scheduling == CycleSched::FrFcfs
                    && self.queue.iter().any(|q| {
                        q.da.rank == txn.da.rank && q.da.bank == txn.da.bank && q.da.row == open
                    });
                let bank = &mut self.ranks[ri].banks[bi];
                if !hit_pending && c >= bank.next_pre {
                    bank.open_row = None;
                    bank.next_act = bank.next_act.max(c + t.rp);
                    bank.pre_done = c + t.rp;
                    self.stats.precharges += 1;
                    if P::ENABLED {
                        self.probe.dram_cmd(CmdEvent::pre(
                            txn.da.rank,
                            txn.da.bank,
                            self.clk.cycles(c),
                            self.clk.cycles(t.rp),
                        ));
                    }
                    true
                } else {
                    false
                }
            }
            None => {
                // Closed: activate if the bank, rank (tRRD) and window
                // (tXAW) allow. A pending auto-precharge must finish first.
                let rank = &self.ranks[ri];
                let bank = &rank.banks[bi];
                if bank.pending_close.is_some_and(|p| c < p) {
                    return false;
                }
                if c >= bank.next_act && rank.act_allowed(c, &t) {
                    let rank = &mut self.ranks[ri];
                    rank.record_act(c, &t);
                    let bank = &mut rank.banks[bi];
                    bank.open_row = Some(txn.da.row);
                    bank.next_col = bank.next_col.max(c + t.rcd);
                    bank.next_pre = bank.next_pre.max(c + t.ras);
                    self.stats.activates += 1;
                    self.queue[i].activated = true;
                    if P::ENABLED {
                        self.probe.dram_cmd(CmdEvent::act(
                            txn.da.rank,
                            txn.da.bank,
                            txn.da.row,
                            self.clk.cycles(c),
                            self.clk.cycles(t.rcd),
                        ));
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    // --------------------------------------------------------------
    // RAS (fault injection, ECC, link retry) — mirrors the event model
    // --------------------------------------------------------------

    /// Runs the fault model for a burst whose data ends at `data_end`
    /// (ticks). Returns true when the burst must be replayed (a link error
    /// with retry budget left); the caller re-queues it. Only called when
    /// a fault model is configured.
    fn ras_check(&mut self, txn: &Txn, data_end: Tick) -> bool {
        let fm = self.fault.as_mut().expect("caller checked");
        let rep = fm.check(txn.da.rank, txn.da.bank, txn.da.row, txn.is_read, data_end);
        let mut retry = false;
        let mark = match rep.outcome {
            BurstOutcome::Clean => None,
            BurstOutcome::Corrected => Some(RasMark::Corrected),
            BurstOutcome::Uncorrected => Some(RasMark::Uncorrected),
            BurstOutcome::Silent => Some(RasMark::Silent),
            BurstOutcome::LinkError => {
                if u32::from(txn.retries) < fm.max_retries() {
                    retry = true;
                    None // the caller emits the retry mark
                } else {
                    fm.note_retry_exhausted();
                    Some(RasMark::Uncorrected)
                }
            }
        };
        if P::ENABLED {
            if let Some(mark) = mark {
                self.probe
                    .ras_event(txn.da.rank, txn.da.bank, txn.da.row, mark, data_end);
            }
            if rep.remapped {
                self.probe.ras_event(
                    txn.da.rank,
                    txn.da.bank,
                    txn.da.row,
                    RasMark::Remap,
                    data_end,
                );
            }
            if let Some(r) = rep.offlined_rank {
                self.probe
                    .ras_event(r, 0, 0, RasMark::RankOffline, data_end);
            }
        }
        retry
    }

    // --------------------------------------------------------------
    // Time advancement
    // --------------------------------------------------------------

    /// Tick of the next cycle the model must execute, if any.
    fn next_work_tick(&self) -> Option<Tick> {
        if self.busy() {
            return Some(self.clk.cycles(self.cycle + 1));
        }
        // Idle: skip straight to the next refresh deadline.
        let due = self
            .ranks
            .iter()
            .map(|r| r.refresh_due)
            .min()
            .unwrap_or(u64::MAX);
        (due != u64::MAX).then(|| self.clk.cycles(due))
    }

    /// Advances the cycle counter to `target`, ticking through any work
    /// (including refreshes that become due) and skipping idle gaps.
    fn advance_cycles_to(&mut self, target: u64) {
        while self.cycle < target {
            if self.busy() {
                self.tick();
            } else {
                let due = self
                    .ranks
                    .iter()
                    .map(|r| r.refresh_due)
                    .min()
                    .unwrap_or(u64::MAX);
                if due > target {
                    self.skip_idle_to(target);
                } else {
                    self.skip_idle_to(due.saturating_sub(1).max(self.cycle));
                    self.tick();
                }
            }
        }
    }

    /// Jumps the cycle counter across an idle gap, accounting precharged
    /// time for power.
    fn skip_idle_to(&mut self, target_cycle: u64) {
        debug_assert!(!self.busy());
        if target_cycle <= self.cycle {
            return;
        }
        let span = target_cycle - self.cycle;
        let c = self.cycle;
        for rank in &mut self.ranks {
            if rank.banks.iter().all(|b| !b.is_physically_open(c)) {
                rank.closed_cycles += span;
            }
        }
        self.cycle = target_cycle;
    }
}

impl<P: Probe> Controller for CycleCtrl<P> {
    fn try_send(&mut self, req: MemRequest, now: Tick) -> Result<(), Rejected> {
        assert!(req.size > 0, "zero-sized request");
        let n = self.burst_count(req.addr, req.size);
        if n > self.cfg.queue_depth {
            return Err(Rejected::TooLarge);
        }
        if self.queue.len() + n > self.cfg.queue_depth {
            return Err(Rejected::Full);
        }
        // Catch the cycle counter up to the present before enqueuing, so
        // commands never issue in the simulated past.
        let now_cycle = self.clk.to_cycles(now);
        if now_cycle > self.cycle {
            self.advance_cycles_to(now_cycle);
        }
        let is_read = req.cmd.is_read();
        if is_read {
            self.stats.reads_accepted += 1;
        } else {
            self.stats.writes_accepted += 1;
        }
        if P::ENABLED {
            self.probe
                .req_accepted(req.id.0, is_read, req.addr, req.size, now);
        }
        let gidx = self.alloc_group(Group {
            req,
            remaining: 0,
            ready_at: 0,
        });
        let bb = self.cfg.spec.org.burst_bytes();
        let end = req.addr + u64::from(req.size);
        let mut b = req.addr / bb * bb;
        let mut pending = 0u32;
        while b < end {
            let lo = (req.addr.max(b) - b) as u32;
            let hi = (end.min(b + bb) - b) as u32;
            // Optional write snooping (paper Section II-A), answered from
            // the same O(1) coverage index the event-based model uses.
            if self.cfg.write_snooping && self.coverage.covers(b, lo, hi) {
                if is_read {
                    self.stats.forwarded_reads += 1;
                } else {
                    self.stats.merged_writes += 1;
                }
                b += bb;
                continue;
            }
            if self.cfg.write_snooping && !is_read {
                self.coverage.insert(b, lo, hi);
            }
            let mut da = self
                .cfg
                .mapping
                .decode(b, &self.cfg.spec.org, self.cfg.channels);
            if let Some(fm) = &self.fault {
                // Degraded mode: traffic to offlined ranks lands on the
                // remaining live ones (capacity loss, not an abort).
                if fm.offline_mask() != 0 {
                    da.rank = dramctrl_mem::remap_rank(
                        da.rank,
                        fm.offline_mask(),
                        self.cfg.spec.org.ranks,
                    );
                }
            }
            self.queue.push_back(Txn {
                is_read,
                da,
                burst_addr: b,
                lo,
                hi,
                entry: now,
                group: gidx,
                activated: false,
                retries: 0,
                not_before: 0,
            });
            pending += 1;
            b += bb;
        }
        if pending == 0 {
            // Entirely covered by queued writes: nothing to simulate.
            self.groups[gidx] = None;
            self.free_groups.push(gidx);
            if is_read {
                self.resp_q
                    .schedule(now.max(self.resp_q.now()), MemResponse::to(&req, now));
                if P::ENABLED {
                    self.probe.req_completed(req.id.0, true, now);
                }
            }
        } else {
            self.groups[gidx].as_mut().expect("live group").remaining = pending;
        }
        self.probe_queue_depth(now);
        if !is_read {
            // Early write acknowledgement, as in the event-based model.
            self.resp_q
                .schedule(now.max(self.resp_q.now()), MemResponse::to(&req, now));
            if P::ENABLED {
                self.probe.req_completed(req.id.0, false, now);
            }
        }
        Ok(())
    }

    fn can_accept(&self, _cmd: MemCmd, addr: u64, size: u32) -> bool {
        self.queue.len() + self.burst_count(addr, size) <= self.cfg.queue_depth
    }

    fn next_event(&self) -> Option<Tick> {
        match (self.resp_q.peek_tick(), self.next_work_tick()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn advance_to(&mut self, limit: Tick, out: &mut Vec<MemResponse>) {
        loop {
            // Deliver responses due before (or at) the next work cycle.
            let work = self.next_work_tick();
            let resp = self.resp_q.peek_tick();
            let next = match (resp, work) {
                (Some(r), Some(w)) => {
                    if r <= w {
                        resp
                    } else {
                        work
                    }
                }
                (r, w) => r.or(w),
            };
            let Some(next) = next else { break };
            if next > limit {
                break;
            }
            if resp == Some(next) && (work.is_none() || next <= work.unwrap()) {
                let (_, r) = self.resp_q.pop().expect("peeked");
                out.push(r);
                continue;
            }
            // Execute the cycle at `next`.
            if self.busy() {
                self.tick();
            } else {
                // Idle skip to the refresh deadline, then run it.
                let target = self.clk.to_cycles(next);
                self.skip_idle_to(target.saturating_sub(1));
                self.tick();
            }
        }
    }

    fn drain(&mut self, out: &mut Vec<MemResponse>) -> Tick {
        while self.busy() || !self.resp_q.is_empty() {
            // Refreshes recur forever; only follow them while real work
            // remains.
            if self.queue.is_empty() && self.pending_closes == 0 && self.resp_q.is_empty() {
                // Let in-progress refreshes finish, then stop.
                let until = self
                    .ranks
                    .iter()
                    .map(|r| r.refreshing_until)
                    .max()
                    .unwrap_or(0);
                while self.cycle < until {
                    self.tick();
                }
                for r in &mut self.ranks {
                    r.want_refresh = false;
                }
                break;
            }
            let next = self.next_event().expect("busy implies a next event");
            self.advance_to(next, out);
        }
        self.clk.cycles(self.cycle).max(self.resp_q.now())
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    fn spec(&self) -> &MemSpec {
        &self.cfg.spec
    }

    fn common_stats(&self) -> CommonStats {
        let s = &self.stats;
        CommonStats {
            reads_accepted: s.reads_accepted,
            writes_accepted: s.writes_accepted,
            rd_bursts: s.rd_bursts,
            wr_bursts: s.wr_bursts,
            bytes_read: s.bytes_read,
            bytes_written: s.bytes_written,
            row_hits: s.row_hits,
            activates: s.activates,
            bus_busy: s.bus_busy,
            read_lat_sum: s.read_lat.sum(),
        }
    }

    fn activity(&mut self, now: Tick) -> ActivityStats {
        let now_cycle = self.clk.to_cycles(now);
        if !self.busy() {
            self.skip_idle_to(now_cycle);
        }
        ActivityStats {
            sim_time: now,
            activates: self.stats.activates,
            precharges: self.stats.precharges,
            rd_bursts: self.stats.rd_bursts,
            wr_bursts: self.stats.wr_bursts,
            refreshes: self.stats.refreshes,
            time_all_banks_precharged: self
                .ranks
                .iter()
                .map(|r| self.clk.cycles(r.closed_cycles))
                .sum(),
            time_powered_down: 0, // the baseline has no low-power states
            time_self_refresh: 0,
            ranks: self.cfg.spec.org.ranks,
        }
    }

    fn report(&self, prefix: &str, now: Tick) -> Report {
        let mut r = Report::new(prefix);
        let s = &self.stats;
        r.text("device", self.cfg.spec.name);
        r.text("model", "cycle");
        r.counter("reads_accepted", s.reads_accepted);
        r.counter("writes_accepted", s.writes_accepted);
        r.counter("rd_bursts", s.rd_bursts);
        r.counter("wr_bursts", s.wr_bursts);
        r.counter("bytes_read", s.bytes_read);
        r.counter("bytes_written", s.bytes_written);
        r.counter("row_hits", s.row_hits);
        r.counter("activates", s.activates);
        r.counter("precharges", s.precharges);
        r.counter("refreshes", s.refreshes);
        if self.cfg.write_snooping {
            r.counter("merged_writes", s.merged_writes);
            r.counter("forwarded_reads", s.forwarded_reads);
        }
        r.counter("cycles_simulated", s.cycles_simulated);
        let common = self.common_stats();
        r.scalar("page_hit_rate", common.page_hit_rate());
        r.scalar("bus_util", common.bus_utilisation(now));
        r.scalar(
            "avg_read_lat_ns",
            dramctrl_kernel::tick::to_ns(s.read_lat.mean() as Tick),
        );
        if let Some(fm) = &self.fault {
            for (name, v) in fm.stats().entries() {
                r.counter(name, v);
            }
            r.counter(
                "ras_usable_capacity_bytes",
                dramctrl_mem::degraded_capacity_bytes(&self.cfg.spec.org, fm.offline_mask()),
            );
        }
        r
    }
}

// ------------------------------------------------------------------
// Checkpointing
// ------------------------------------------------------------------

fn save_txn(w: &mut SnapWriter, txn: &Txn) {
    w.bool(txn.is_read);
    snapio::save_addr(w, &txn.da);
    w.u64(txn.burst_addr);
    w.u32(txn.lo);
    w.u32(txn.hi);
    w.u64(txn.entry);
    w.usize(txn.group);
    w.bool(txn.activated);
    w.u8(txn.retries);
    w.u64(txn.not_before);
}

fn read_txn(r: &mut SnapReader<'_>) -> Result<Txn, SnapError> {
    Ok(Txn {
        is_read: r.bool()?,
        da: snapio::read_addr(r)?,
        burst_addr: r.u64()?,
        lo: r.u32()?,
        hi: r.u32()?,
        entry: r.u64()?,
        group: r.usize()?,
        activated: r.bool()?,
        retries: r.u8()?,
        not_before: r.u64()?,
    })
}

fn save_bank(w: &mut SnapWriter, bank: &CycBank) {
    w.opt_u64(bank.open_row);
    w.u64(bank.next_act);
    w.u64(bank.next_pre);
    w.u64(bank.next_col);
    w.opt_u64(bank.pending_close);
    w.u64(bank.pre_done);
}

fn read_bank(r: &mut SnapReader<'_>) -> Result<CycBank, SnapError> {
    Ok(CycBank {
        open_row: r.opt_u64()?,
        next_act: r.u64()?,
        next_pre: r.u64()?,
        next_col: r.u64()?,
        pending_close: r.opt_u64()?,
        pre_done: r.u64()?,
    })
}

impl<P: Probe> SnapState for CycleCtrl<P> {
    /// Captures the full dynamic state of the controller: the cycle
    /// counter, the unified transaction queue, burst groups (slots *and*
    /// free list, preserving slot-reuse order), per-bank FSM timers,
    /// refresh bookkeeping, the response queue, bus direction/turnaround
    /// state, write coverage, the RAS fault model and statistics.
    ///
    /// Configuration-derived fields (the config itself, the clock, the
    /// cycle-converted timing table and the probe) are *not* written;
    /// restore targets a freshly constructed controller built from the
    /// same [`CycleConfig`].
    fn save_state(&self, w: &mut SnapWriter) {
        w.u64(self.cycle);
        w.usize(self.queue.len());
        for txn in &self.queue {
            save_txn(w, txn);
        }
        w.usize(self.groups.len());
        for slot in &self.groups {
            match slot {
                Some(g) => {
                    w.bool(true);
                    snapio::save_request(w, &g.req);
                    w.u32(g.remaining);
                    w.u64(g.ready_at);
                }
                None => w.bool(false),
            }
        }
        w.usize(self.free_groups.len());
        for &f in &self.free_groups {
            w.usize(f);
        }
        w.usize(self.ranks.len());
        for rank in &self.ranks {
            w.usize(rank.banks.len());
            for bank in &rank.banks {
                save_bank(w, bank);
            }
            w.usize(rank.act_times.len());
            for &t in &rank.act_times {
                w.u64(t);
            }
            w.u64(rank.next_act_rank);
            w.u64(rank.refresh_due);
            w.bool(rank.want_refresh);
            w.u64(rank.refreshing_until);
            w.u64(rank.closed_cycles);
        }
        self.resp_q.save_state(w, snapio::save_response);
        w.u64(self.bus_free);
        w.u64(self.last_data_end);
        w.u8(match self.last_dir {
            None => 0,
            Some(Dir::Rd) => 1,
            Some(Dir::Wr) => 2,
        });
        self.coverage.save_state(w);
        w.bool(self.fault.is_some());
        if let Some(fm) = &self.fault {
            fm.save_state(w);
        }
        let s = &self.stats;
        w.u64(s.reads_accepted);
        w.u64(s.writes_accepted);
        w.u64(s.rd_bursts);
        w.u64(s.wr_bursts);
        w.u64(s.bytes_read);
        w.u64(s.bytes_written);
        w.u64(s.row_hits);
        w.u64(s.activates);
        w.u64(s.precharges);
        w.u64(s.refreshes);
        w.u64(s.bus_busy);
        w.u64(s.merged_writes);
        w.u64(s.forwarded_reads);
        w.u64(s.cycles_simulated);
        let (sum, count, min, max) = s.read_lat.to_parts();
        w.f64(sum);
        w.u64(count);
        w.f64(min);
        w.f64(max);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cycle = r.u64()?;
        let n_txn = r.usize()?;
        self.queue.clear();
        for _ in 0..n_txn {
            self.queue.push_back(read_txn(r)?);
        }
        let n_groups = r.usize()?;
        self.groups.clear();
        for _ in 0..n_groups {
            if r.bool()? {
                self.groups.push(Some(Group {
                    req: snapio::read_request(r)?,
                    remaining: r.u32()?,
                    ready_at: r.u64()?,
                }));
            } else {
                self.groups.push(None);
            }
        }
        let n_free = r.usize()?;
        self.free_groups.clear();
        for _ in 0..n_free {
            let f = r.usize()?;
            if self.groups.get(f).map_or(true, Option::is_some) {
                return Err(SnapError::Corrupt(format!("free-list entry {f} not free")));
            }
            self.free_groups.push(f);
        }
        let empty = self.groups.iter().filter(|s| s.is_none()).count();
        if empty != self.free_groups.len() {
            return Err(SnapError::Corrupt(format!(
                "{empty} empty group slots but {} free-list entries",
                self.free_groups.len()
            )));
        }
        for txn in &self.queue {
            if self.groups.get(txn.group).map_or(true, Option::is_none) {
                return Err(SnapError::Corrupt(format!(
                    "queued burst references dead group {}",
                    txn.group
                )));
            }
        }
        let n_ranks = r.usize()?;
        if n_ranks != self.ranks.len() {
            return Err(SnapError::Corrupt(format!(
                "snapshot has {n_ranks} ranks, configuration has {}",
                self.ranks.len()
            )));
        }
        for rank in &mut self.ranks {
            let n_banks = r.usize()?;
            if n_banks != rank.banks.len() {
                return Err(SnapError::Corrupt(format!(
                    "snapshot has {n_banks} banks per rank, configuration has {}",
                    rank.banks.len()
                )));
            }
            for bank in &mut rank.banks {
                *bank = read_bank(r)?;
            }
            let n_acts = r.usize()?;
            rank.act_times.clear();
            for _ in 0..n_acts {
                let t = r.u64()?;
                if rank.act_times.back().is_some_and(|&last| t < last) {
                    return Err(SnapError::Corrupt(
                        "activation window times out of order".into(),
                    ));
                }
                rank.act_times.push_back(t);
            }
            rank.next_act_rank = r.u64()?;
            rank.refresh_due = r.u64()?;
            rank.want_refresh = r.bool()?;
            rank.refreshing_until = r.u64()?;
            rank.closed_cycles = r.u64()?;
        }
        self.resp_q.restore_state(r, snapio::read_response)?;
        self.bus_free = r.u64()?;
        self.last_data_end = r.u64()?;
        self.last_dir = match r.u8()? {
            0 => None,
            1 => Some(Dir::Rd),
            2 => Some(Dir::Wr),
            t => return Err(SnapError::Corrupt(format!("unknown bus direction tag {t}"))),
        };
        // Derived: the count of banks with a scheduled auto-precharge.
        self.pending_closes = self
            .ranks
            .iter()
            .flat_map(|r| &r.banks)
            .filter(|b| b.pending_close.is_some())
            .count();
        self.coverage.restore_state(r)?;
        let has_fault = r.bool()?;
        if has_fault != self.fault.is_some() {
            return Err(SnapError::Corrupt(
                "RAS presence differs between snapshot and configuration".into(),
            ));
        }
        if let Some(fm) = &mut self.fault {
            fm.restore_state(r)?;
        }
        let s = &mut self.stats;
        s.reads_accepted = r.u64()?;
        s.writes_accepted = r.u64()?;
        s.rd_bursts = r.u64()?;
        s.wr_bursts = r.u64()?;
        s.bytes_read = r.u64()?;
        s.bytes_written = r.u64()?;
        s.row_hits = r.u64()?;
        s.activates = r.u64()?;
        s.precharges = r.u64()?;
        s.refreshes = r.u64()?;
        s.bus_busy = r.u64()?;
        s.merged_writes = r.u64()?;
        s.forwarded_reads = r.u64()?;
        s.cycles_simulated = r.u64()?;
        let sum = r.f64()?;
        let count = r.u64()?;
        let min = r.f64()?;
        let max = r.f64()?;
        s.read_lat = Average::from_parts(sum, count, min, max);
        Ok(())
    }
}
