//! # dramctrl-cycle — a cycle-based DRAM controller baseline
//!
//! A DRAMSim2-style cycle-by-cycle controller used as the comparison
//! baseline for the event-based model, exactly as in paper Section III.
//! The architectural differences are intentional and mirror those the paper
//! calls out between its model and DRAMSim2:
//!
//! | Property | event-based (`dramctrl`) | this crate |
//! |---|---|---|
//! | Execution | per event | per memory-clock cycle |
//! | Queues | split read/write | unified transaction queue |
//! | Write handling | drain mode with watermarks | interleaved with reads |
//! | Write merging / read forwarding | yes | no |
//! | Early write response | yes | yes (both ack on accept) |
//!
//! Both controllers implement
//! [`dramctrl_mem::Controller`], so validation harnesses drive them with
//! identical traffic and compare bandwidth, latency distributions, power
//! and — crucially — simulation speed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod ctrl;

pub use config::{CycleConfig, CycleConfigError, CyclePagePolicy, CycleSched};
pub use ctrl::{CycleCtrl, CycleStats};

// Re-exported so front ends configure RAS without a direct `dramctrl-ras`
// dependency.
pub use dramctrl_ras::{EccMode, FaultModel, RasConfig};
