//! Property-based tests for the cycle-based baseline, mirroring the
//! invariants of the event-based controller's suite: conservation of
//! requests, ordering of responses and statistics consistency.

use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_kernel::rng::Rng;
use dramctrl_mem::{presets, AddrMapping, Controller, MemRequest, Rejected, ReqId};

/// A seeded batch of requests with mixed commands, sizes and localities.
fn requests(rng: &mut Rng) -> Vec<(bool, u64, u32)> {
    let sizes = [16u32, 64, 128, 256];
    (0..rng.gen_range(1..40))
        .map(|_| {
            (
                rng.gen_bool(),
                rng.gen_range(0..1 << 22),
                sizes[rng.gen_range(0..4) as usize],
            )
        })
        .collect()
}

/// Every accepted request produces exactly one response under any
/// policy combination; the controller ends idle with consistent
/// statistics.
#[test]
fn one_response_per_request() {
    let mut rng = Rng::seed_from_u64(0x000C_7C1E_0001);
    for _ in 0..48 {
        let reqs = requests(&mut rng);
        let closed = rng.gen_bool();
        let fcfs = rng.gen_bool();
        let mapping_idx = rng.gen_range(0..3) as usize;
        let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cfg.spec.timing.t_refi = 0;
        cfg.page_policy = if closed {
            CyclePagePolicy::Closed
        } else {
            CyclePagePolicy::Open
        };
        cfg.scheduling = if fcfs {
            CycleSched::Fcfs
        } else {
            CycleSched::FrFcfs
        };
        cfg.mapping = [
            AddrMapping::RoRaBaCoCh,
            AddrMapping::RoRaBaChCo,
            AddrMapping::RoCoRaBaCh,
        ][mapping_idx];
        let mut c = CycleCtrl::new(cfg).unwrap();

        let mut out = Vec::new();
        let mut t = 0;
        let mut accepted = 0u64;
        for (i, &(is_read, addr, size)) in reqs.iter().enumerate() {
            let req = if is_read {
                MemRequest::read(ReqId(i as u64), addr, size)
            } else {
                MemRequest::write(ReqId(i as u64), addr, size)
            };
            loop {
                match c.try_send(req, t) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(Rejected::TooLarge) => break,
                    Err(Rejected::Full) => {
                        let next = c.next_event().expect("full implies pending work");
                        t = t.max(next);
                        c.advance_to(t, &mut out);
                    }
                }
            }
        }
        c.drain(&mut out);

        assert_eq!(out.len() as u64, accepted);
        assert!(c.is_idle());
        assert!(out.windows(2).all(|w| w[0].ready_at <= w[1].ready_at));
        let s = c.common_stats();
        assert_eq!(s.reads_accepted + s.writes_accepted, accepted);
        let bursts = s.rd_bursts + s.wr_bursts;
        assert_eq!(s.bus_busy, bursts * c.config().spec.timing.t_burst);
        assert!(s.row_hits <= bursts);
        assert!(s.activates <= bursts);
        // Cycle accounting: the model did per-cycle work.
        assert!(c.stats().cycles_simulated > 0);
    }
}

/// Burst counts are identical between the two models for read-only
/// traffic (no merging/forwarding differences apply), regardless of
/// chopping.
#[test]
fn models_chop_identically() {
    use dramctrl::{CtrlConfig, DramCtrl};

    let mut rng = Rng::seed_from_u64(0x000C_7C1E_0002);
    for _ in 0..48 {
        let addrs: Vec<(u64, u32)> = (0..rng.gen_range(1..30))
            .map(|_| (rng.gen_range(0..1 << 22), rng.gen_range(1..300) as u32))
            .collect();
        let mut ev_cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        ev_cfg.spec.timing.t_refi = 0;
        ev_cfg.read_buffer_size = 512;
        let mut ev = DramCtrl::new(ev_cfg).unwrap();
        let mut cy_cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cy_cfg.spec.timing.t_refi = 0;
        cy_cfg.queue_depth = 512;
        let mut cy = CycleCtrl::new(cy_cfg).unwrap();

        let mut out = Vec::new();
        for (i, &(addr, size)) in addrs.iter().enumerate() {
            let req = MemRequest::read(ReqId(i as u64), addr, size);
            let _ = Controller::try_send(&mut ev, req, 0);
            let _ = cy.try_send(req, 0);
        }
        Controller::drain(&mut ev, &mut out);
        cy.drain(&mut out);
        assert_eq!(
            Controller::common_stats(&ev).rd_bursts,
            cy.common_stats().rd_bursts
        );
        assert_eq!(
            Controller::common_stats(&ev).bytes_read,
            cy.common_stats().bytes_read
        );
    }
}
