//! Property-based tests for the cycle-based baseline, mirroring the
//! invariants of the event-based controller's suite: conservation of
//! requests, ordering of responses and statistics consistency.

use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_mem::{presets, AddrMapping, Controller, MemRequest, Rejected, ReqId};
use proptest::prelude::*;

fn requests() -> impl Strategy<Value = Vec<(bool, u64, u32)>> {
    proptest::collection::vec(
        (
            any::<bool>(),
            0u64..(1 << 22),
            prop_oneof![Just(16u32), Just(64u32), Just(128u32), Just(256u32)],
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted request produces exactly one response under any
    /// policy combination; the controller ends idle with consistent
    /// statistics.
    #[test]
    fn one_response_per_request(
        reqs in requests(),
        closed in any::<bool>(),
        fcfs in any::<bool>(),
        mapping_idx in 0usize..3,
    ) {
        let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cfg.spec.timing.t_refi = 0;
        cfg.page_policy = if closed {
            CyclePagePolicy::Closed
        } else {
            CyclePagePolicy::Open
        };
        cfg.scheduling = if fcfs { CycleSched::Fcfs } else { CycleSched::FrFcfs };
        cfg.mapping = [
            AddrMapping::RoRaBaCoCh,
            AddrMapping::RoRaBaChCo,
            AddrMapping::RoCoRaBaCh,
        ][mapping_idx];
        let mut c = CycleCtrl::new(cfg).unwrap();

        let mut out = Vec::new();
        let mut t = 0;
        let mut accepted = 0u64;
        for (i, &(is_read, addr, size)) in reqs.iter().enumerate() {
            let req = if is_read {
                MemRequest::read(ReqId(i as u64), addr, size)
            } else {
                MemRequest::write(ReqId(i as u64), addr, size)
            };
            loop {
                match c.try_send(req, t) {
                    Ok(()) => {
                        accepted += 1;
                        break;
                    }
                    Err(Rejected::TooLarge) => break,
                    Err(Rejected::Full) => {
                        let next = c.next_event().expect("full implies pending work");
                        t = t.max(next);
                        c.advance_to(t, &mut out);
                    }
                }
            }
        }
        c.drain(&mut out);

        prop_assert_eq!(out.len() as u64, accepted);
        prop_assert!(c.is_idle());
        prop_assert!(out.windows(2).all(|w| w[0].ready_at <= w[1].ready_at));
        let s = c.common_stats();
        prop_assert_eq!(s.reads_accepted + s.writes_accepted, accepted);
        let bursts = s.rd_bursts + s.wr_bursts;
        prop_assert_eq!(s.bus_busy, bursts * c.config().spec.timing.t_burst);
        prop_assert!(s.row_hits <= bursts);
        prop_assert!(s.activates <= bursts);
        // Cycle accounting: the model did per-cycle work.
        prop_assert!(c.stats().cycles_simulated > 0);
    }

    /// Burst counts are identical between the two models for read-only
    /// traffic (no merging/forwarding differences apply), regardless of
    /// chopping.
    #[test]
    fn models_chop_identically(
        addrs in proptest::collection::vec((0u64..(1 << 22), 1u32..300), 1..30),
    ) {
        use dramctrl::{CtrlConfig, DramCtrl};

        let mut ev_cfg = CtrlConfig::new(presets::ddr3_1333_x64());
        ev_cfg.spec.timing.t_refi = 0;
        ev_cfg.read_buffer_size = 512;
        let mut ev = DramCtrl::new(ev_cfg).unwrap();
        let mut cy_cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cy_cfg.spec.timing.t_refi = 0;
        cy_cfg.queue_depth = 512;
        let mut cy = CycleCtrl::new(cy_cfg).unwrap();

        let mut out = Vec::new();
        for (i, &(addr, size)) in addrs.iter().enumerate() {
            let req = MemRequest::read(ReqId(i as u64), addr, size);
            let _ = Controller::try_send(&mut ev, req, 0);
            let _ = cy.try_send(req, 0);
        }
        Controller::drain(&mut ev, &mut out);
        cy.drain(&mut out);
        prop_assert_eq!(
            Controller::common_stats(&ev).rd_bursts,
            cy.common_stats().rd_bursts
        );
        prop_assert_eq!(
            Controller::common_stats(&ev).bytes_read,
            cy.common_stats().bytes_read
        );
    }
}
