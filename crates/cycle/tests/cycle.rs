//! Tests for the cycle-based baseline: cycle-exact latencies, refresh,
//! flow control, and first-order agreement with the event-based model.

use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy, CycleSched};
use dramctrl_mem::{presets, AddrMapping, Controller, DramAddr, MemRequest, Rejected, ReqId};

fn ctrl_with(f: impl FnOnce(&mut CycleConfig)) -> CycleCtrl {
    let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
    cfg.spec.timing.t_refi = 0;
    f(&mut cfg);
    CycleCtrl::new(cfg).unwrap()
}

fn addr(bank: u32, row: u64, col: u64) -> u64 {
    let org = presets::ddr3_1333_x64().org;
    AddrMapping::RoRaBaCoCh.encode(
        &DramAddr {
            rank: 0,
            bank,
            row,
            col,
        },
        0,
        &org,
        1,
    )
}

#[test]
fn cold_read_latency_in_cycles() {
    // DDR3-1333 at tCK = 1.5 ns: tRCD = tCL = ceil(13.5/1.5) = 9 cycles,
    // tBURST = 4 cycles. ACT issues on cycle 1 (the first executed cycle),
    // RD on cycle 1+9, data ends at 1+9+9+4 = 23 cycles = 34.5 ns.
    let mut c = ctrl_with(|_| {});
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].ready_at, 23 * 1_500);
    assert_eq!(c.stats().activates, 1);
}

#[test]
fn row_hits_pipeline_on_the_bus() {
    let mut c = ctrl_with(|_| {});
    for i in 0..4 {
        c.try_send(MemRequest::read(ReqId(i), addr(0, 5, i), 64), 0)
            .unwrap();
    }
    let mut out = Vec::new();
    c.drain(&mut out);
    // Bursts follow back to back: each adds 4 cycles.
    for (i, r) in out.iter().enumerate() {
        assert_eq!(r.ready_at, (23 + 4 * i as u64) * 1_500);
    }
    assert_eq!(c.stats().row_hits, 3);
    assert_eq!(c.stats().activates, 1);
}

#[test]
fn bank_conflict_reopens_row() {
    let mut c = ctrl_with(|_| {});
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(c.stats().precharges, 1);
    assert_eq!(c.stats().activates, 2);
    // PRE gated by tRAS (24 cycles from ACT at cycle 1), +tRP +tRCD +tCL
    // +tBURST = 25 + 9 + 9 + 9 + 4 = 56 cycles.
    assert_eq!(out[1].ready_at, 56 * 1_500);
}

#[test]
fn writes_ack_immediately_but_occupy_queue() {
    let mut c = ctrl_with(|_| {});
    c.try_send(MemRequest::write(ReqId(0), addr(0, 1, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.advance_to(0, &mut out);
    assert_eq!(out.len(), 1, "early write acknowledgement");
    assert_eq!(out[0].ready_at, 0);
    // Unlike the event-based model, the unified queue drains the write
    // without any watermark: it reaches DRAM during a normal drain.
    c.drain(&mut out);
    assert_eq!(c.stats().wr_bursts, 1);
}

#[test]
fn unified_queue_interleaves_reads_and_writes() {
    // DRAMSim2-style: no write drain mode, so a write between two reads to
    // the same row is serviced in arrival order under FCFS, paying both
    // turnarounds.
    let mut c = ctrl_with(|cfg| cfg.scheduling = CycleSched::Fcfs);
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::write(ReqId(1), addr(0, 5, 1), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(2), addr(0, 5, 2), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(c.stats().rd_bursts, 2);
    assert_eq!(c.stats().wr_bursts, 1);
    // The second read pays the write-to-read turnaround: its data cannot
    // start before the write data end + tWTR + tCL.
    let r2 = out.iter().find(|r| r.id == ReqId(2)).unwrap();
    let r0 = out.iter().find(|r| r.id == ReqId(0)).unwrap();
    assert!(r2.ready_at > r0.ready_at + 2 * 4 * 1_500, "turnaround gap");
}

#[test]
fn closed_page_auto_precharges() {
    let mut c = ctrl_with(|cfg| cfg.page_policy = CyclePagePolicy::Closed);
    for i in 0..2 {
        c.try_send(MemRequest::read(ReqId(i), addr(0, 5, i), 64), 0)
            .unwrap();
    }
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(c.stats().row_hits, 0, "closed page never hits");
    assert_eq!(c.stats().activates, 2);
    assert_eq!(c.stats().precharges, 2);
}

#[test]
fn refresh_blocks_and_recurs() {
    let cfg = CycleConfig::new(presets::ddr3_1333_x64());
    let t_refi = cfg.spec.timing.t_refi;
    let mut c = CycleCtrl::new(cfg).unwrap();
    let mut out = Vec::new();
    c.advance_to(3 * t_refi + 1_000_000, &mut out);
    assert_eq!(c.stats().refreshes, 3);
    // A read right at the refresh deadline waits out tRFC.
    let mut c = CycleCtrl::new(CycleConfig::new(presets::ddr3_1333_x64())).unwrap();
    c.advance_to(t_refi, &mut out);
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), t_refi)
        .unwrap();
    out.clear();
    c.drain(&mut out);
    let t_rfc = presets::ddr3_1333_x64().timing.t_rfc;
    assert!(out[0].ready_at >= t_refi + t_rfc, "read waits for refresh");
}

#[test]
fn queue_backpressure() {
    let mut c = ctrl_with(|cfg| cfg.queue_depth = 2);
    assert_eq!(
        c.try_send(MemRequest::read(ReqId(0), 0, 256), 0),
        Err(Rejected::TooLarge)
    );
    c.try_send(MemRequest::read(ReqId(1), 0, 64), 0).unwrap();
    c.try_send(MemRequest::write(ReqId(2), 64, 64), 0).unwrap();
    assert_eq!(
        c.try_send(MemRequest::read(ReqId(3), 128, 64), 0),
        Err(Rejected::Full)
    );
    let mut out = Vec::new();
    c.drain(&mut out);
    assert!(c.can_accept(dramctrl_mem::MemCmd::Read, 128, 64));
}

#[test]
fn frfcfs_prefers_row_hits() {
    let mut c = ctrl_with(|_| {});
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 0)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(2), addr(0, 5, 1), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    let order: Vec<_> = out.iter().map(|r| r.id.0).collect();
    assert_eq!(order, vec![0, 2, 1]);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut c = ctrl_with(|_| {});
        let mut out = Vec::new();
        for i in 0..100u64 {
            let t = i * 3_000;
            c.advance_to(t, &mut out);
            let req = if i % 4 == 0 {
                MemRequest::write(ReqId(i), (i % 16) * 4096 + i * 64, 64)
            } else {
                MemRequest::read(ReqId(i), (i % 16) * 4096 + i * 64, 64)
            };
            if c.can_accept(req.cmd, req.addr, req.size) {
                c.try_send(req, t).unwrap();
            }
        }
        c.drain(&mut out);
        out.iter().map(|r| (r.id, r.ready_at)).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn activity_tracks_precharged_time() {
    let mut c = ctrl_with(|cfg| cfg.page_policy = CyclePagePolicy::Closed);
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    let act = c.activity(1_500_000); // 1000 cycles
    assert_eq!(act.activates, 1);
    assert_eq!(act.refreshes, 0);
    assert!(act.time_all_banks_precharged > 0);
    assert!(act.time_all_banks_precharged < act.sim_time);
}

/// First-order agreement between the two models (paper Section III): same
/// work done, comparable bus occupancy, identical burst counts on a
/// read-only sequential stream.
#[test]
fn models_agree_on_sequential_reads() {
    use dramctrl::{CtrlConfig, DramCtrl};

    let mut evcfg = CtrlConfig::new(presets::ddr3_1333_x64());
    evcfg.spec.timing.t_refi = 0;
    let mut ev = DramCtrl::new(evcfg).unwrap();
    let mut cy = ctrl_with(|_| {});

    let mut ev_out = Vec::new();
    let mut cy_out = Vec::new();
    for i in 0..200u64 {
        let req = MemRequest::read(ReqId(i), i * 64, 64);
        let t = i * 6_000; // one burst-time apart: saturating
        Controller::advance_to(&mut ev, t, &mut ev_out);
        cy.advance_to(t, &mut cy_out);
        while Controller::try_send(&mut ev, req, t).is_err() {
            let n = Controller::next_event(&ev).unwrap();
            Controller::advance_to(&mut ev, n.max(t), &mut ev_out);
        }
        while cy.try_send(req, t).is_err() {
            let n = cy.next_event().unwrap();
            cy.advance_to(n.max(t), &mut cy_out);
        }
    }
    let ev_end = Controller::drain(&mut ev, &mut ev_out);
    let cy_end = cy.drain(&mut cy_out);

    assert_eq!(ev_out.len(), 200);
    assert_eq!(cy_out.len(), 200);
    let (es, cs) = (Controller::common_stats(&ev), cy.common_stats());
    assert_eq!(es.rd_bursts, cs.rd_bursts);
    assert_eq!(es.activates, cs.activates);
    // Completion times within 15% of each other (cycle quantisation and
    // command-bus modelling differ).
    let ratio = ev_end as f64 / cy_end as f64;
    assert!((0.85..1.15).contains(&ratio), "end ratio {ratio}");
    // Both models near-saturate the bus.
    assert!(es.bus_utilisation(ev_end) > 0.8);
    assert!(cs.bus_utilisation(cy_end) > 0.8);
}

/// Regression: under strict FCFS, a conflicting head transaction must be
/// allowed to precharge even when a row hit sits *behind* it — otherwise
/// the queue deadlocks (the hit can never be served out of order).
#[test]
fn fcfs_head_conflict_with_trailing_hit_makes_progress() {
    let mut c = ctrl_with(|cfg| cfg.scheduling = CycleSched::Fcfs);
    // Open row 5, then queue a conflict (row 6) ahead of a hit (row 5).
    c.try_send(MemRequest::read(ReqId(0), addr(0, 5, 0), 64), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    c.try_send(MemRequest::read(ReqId(1), addr(0, 6, 0), 64), 100_000)
        .unwrap();
    c.try_send(MemRequest::read(ReqId(2), addr(0, 5, 1), 64), 100_000)
        .unwrap();
    out.clear();
    c.drain(&mut out);
    let order: Vec<_> = out.iter().map(|r| r.id.0).collect();
    assert_eq!(order, vec![1, 2], "FCFS order, no deadlock");
}

/// With `write_snooping` on, a read fully covered by a queued write is
/// forwarded (no DRAM access) and a covered write is merged away — the
/// event-based model's Section II-A behaviour, via the same coverage index.
#[test]
fn write_snooping_forwards_reads_and_merges_writes() {
    let mut c = ctrl_with(|cfg| cfg.write_snooping = true);
    let a = addr(2, 7, 0);
    c.try_send(MemRequest::write(ReqId(0), a, 64), 0).unwrap();
    c.try_send(MemRequest::write(ReqId(1), a, 64), 0).unwrap();
    c.try_send(MemRequest::read(ReqId(2), a, 64), 0).unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    // Two write acks plus the forwarded read, all at tick 0.
    assert_eq!(out.len(), 3);
    assert!(out.iter().all(|r| r.ready_at == 0));
    assert_eq!(c.stats().merged_writes, 1);
    assert_eq!(c.stats().forwarded_reads, 1);
    assert_eq!(c.stats().wr_bursts, 1, "only one write touches DRAM");
    assert_eq!(c.stats().rd_bursts, 0, "the read never touches DRAM");
}

/// A partial write does not cover a wider read; coverage ends when the
/// write leaves the queue.
#[test]
fn write_snooping_respects_spans_and_drain() {
    let mut c = ctrl_with(|cfg| cfg.write_snooping = true);
    let a = addr(1, 3, 0);
    c.try_send(MemRequest::write(ReqId(0), a + 8, 16), 0)
        .unwrap();
    // Wider than the queued write: must go to DRAM.
    c.try_send(MemRequest::read(ReqId(1), a, 64), 0).unwrap();
    // Subsumed by the queued write: forwarded.
    c.try_send(MemRequest::read(ReqId(2), a + 12, 4), 0)
        .unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(c.stats().forwarded_reads, 1);
    assert_eq!(c.stats().rd_bursts, 1);
    // Once drained, the write no longer covers anything.
    c.try_send(
        MemRequest::read(ReqId(3), a + 12, 4),
        c.next_event().unwrap_or(10_000_000),
    )
    .unwrap();
    out.clear();
    c.drain(&mut out);
    assert_eq!(c.stats().forwarded_reads, 1, "no stale coverage");
    assert_eq!(c.stats().rd_bursts, 2);
}

/// Snooping off (the default) keeps DRAMSim2 behaviour: every burst
/// reaches DRAM.
#[test]
fn snooping_off_by_default_services_every_burst() {
    let mut c = ctrl_with(|_| {});
    let a = addr(2, 7, 0);
    c.try_send(MemRequest::write(ReqId(0), a, 64), 0).unwrap();
    c.try_send(MemRequest::write(ReqId(1), a, 64), 0).unwrap();
    c.try_send(MemRequest::read(ReqId(2), a, 64), 0).unwrap();
    let mut out = Vec::new();
    c.drain(&mut out);
    assert_eq!(c.stats().merged_writes, 0);
    assert_eq!(c.stats().forwarded_reads, 0);
    assert_eq!(c.stats().wr_bursts, 2);
    assert_eq!(c.stats().rd_bursts, 1);
}

/// The instrumentation layer must not perturb the cycle model either:
/// a controller carrying live Chrome-trace + epoch sinks produces the
/// same responses, drain tick and rendered report as a plain one, while
/// the sinks see real commands.
#[test]
fn tracing_is_zero_perturbation() {
    use dramctrl_obs::{ChromeTracer, EpochRecorder};

    let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
    cfg.page_policy = CyclePagePolicy::Open;
    let mut plain = CycleCtrl::new(cfg.clone()).unwrap();
    let mut traced =
        CycleCtrl::with_probe(cfg, (ChromeTracer::new(), EpochRecorder::new(1_000_000))).unwrap();

    // Deterministic mixed workload over several banks and rows.
    let mut state = 0x0B5u64;
    let mut step = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut t = 0;
    for i in 0..200u64 {
        let a = addr((step() % 8) as u32, step() % 64, step() % 64);
        let req = if step() % 3 == 0 {
            MemRequest::write(ReqId(i), a, 64)
        } else {
            MemRequest::read(ReqId(i), a, 64)
        };
        t += step() % 20_000;
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        plain.advance_to(t, &mut o1);
        traced.advance_to(t, &mut o2);
        assert_eq!(o1, o2, "tracing perturbed responses before tick {t}");
        assert_eq!(
            plain.try_send(req, t).is_ok(),
            traced.try_send(req, t).is_ok(),
            "tracing perturbed flow control at tick {t}"
        );
    }
    let (mut o1, mut o2) = (Vec::new(), Vec::new());
    let t1 = plain.drain(&mut o1);
    let t2 = traced.drain(&mut o2);
    assert_eq!(t1, t2, "tracing perturbed the drain tick");
    assert_eq!(o1, o2, "tracing perturbed the final responses");
    assert_eq!(
        plain.report("ctrl", t1).to_string(),
        traced.report("ctrl", t2).to_string(),
        "tracing perturbed the statistics report"
    );

    let (tracer, mut epochs) = traced.into_probe();
    epochs.finish(t2);
    assert!(!tracer.is_empty(), "tracer saw no events");
    let json = tracer.to_json();
    dramctrl_obs::json::validate(&json).expect("loadable trace JSON");
    assert!(json.contains("\"ACT\"") && json.contains("\"RD\""));
    assert!(!epochs.rows().is_empty(), "no epochs recorded");
}

/// Zero-rate RAS must be byte-transparent on the cycle model too: same
/// responses, flow control, drain tick and (modulo the ras_* counters
/// themselves) the same report as a controller without a fault model.
#[test]
fn zero_rate_ras_is_transparent() {
    use dramctrl_cycle::RasConfig;

    // Drop the ras_* entries and the JSON document closer, which lands on
    // whatever the last entry line is.
    let strip_ras = |json: &str| {
        json.lines()
            .filter(|l| !l.contains("\"ras_"))
            .map(|l| l.trim_end_matches("]}").trim_end_matches(','))
            .collect::<Vec<_>>()
            .join("\n")
    };

    for policy in [CyclePagePolicy::Open, CyclePagePolicy::Closed] {
        for sched in [CycleSched::Fcfs, CycleSched::FrFcfs] {
            let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
            cfg.page_policy = policy;
            cfg.scheduling = sched;
            let mut armed_cfg = cfg.clone();
            armed_cfg.ras = Some(RasConfig::new(0xA5)); // all rates zero
            let mut plain = CycleCtrl::new(cfg).unwrap();
            let mut armed = CycleCtrl::new(armed_cfg).unwrap();

            let mut state = 0x5EEDu64;
            let mut step = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            let mut t = 0;
            for i in 0..300u64 {
                let a = addr((step() % 8) as u32, step() % 64, step() % 64);
                let req = if step() % 3 == 0 {
                    MemRequest::write(ReqId(i), a, 64)
                } else {
                    MemRequest::read(ReqId(i), a, 64)
                };
                t += step() % 15_000;
                let (mut o1, mut o2) = (Vec::new(), Vec::new());
                plain.advance_to(t, &mut o1);
                armed.advance_to(t, &mut o2);
                assert_eq!(o1, o2, "RAS perturbed responses ({policy}/{sched:?})");
                assert_eq!(
                    plain.try_send(req, t).is_ok(),
                    armed.try_send(req, t).is_ok(),
                    "RAS perturbed flow control ({policy}/{sched:?})"
                );
            }
            let (mut o1, mut o2) = (Vec::new(), Vec::new());
            let t1 = plain.drain(&mut o1);
            let t2 = armed.drain(&mut o2);
            assert_eq!(t1, t2, "RAS perturbed the drain tick");
            assert_eq!(o1, o2, "RAS perturbed the final responses");
            assert_eq!(
                strip_ras(&plain.report("ctrl", t1).to_json()),
                strip_ras(&armed.report("ctrl", t2).to_json()),
                "RAS perturbed the statistics ({policy}/{sched:?})"
            );
            let fm = armed.fault_model().unwrap();
            assert!(
                fm.stats().entries().iter().all(|&(_, v)| v == 0),
                "zero-rate model recorded faults"
            );
            assert!(fm.log().is_empty());
        }
    }
}

/// A seeded faulty cycle run is fully deterministic: byte-identical fault
/// log and stats JSON across repeated runs, with corrected errors under
/// SEC-DED at single-bit rates and zero silent corruptions.
#[test]
fn faulty_cycle_runs_are_deterministic() {
    use dramctrl_cycle::{EccMode, RasConfig};

    let run = || {
        let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cfg.ras = Some(RasConfig::from_error_rate(2e11, 0xFA_15).with_ecc(EccMode::SecDed));
        let mut c = CycleCtrl::new(cfg).unwrap();
        let mut state = 0xDEAFu64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = 0;
        let mut out = Vec::new();
        for i in 0..400u64 {
            let a = addr((step() % 8) as u32, step() % 128, step() % 64);
            let req = if step() % 3 == 0 {
                MemRequest::write(ReqId(i), a, 64)
            } else {
                MemRequest::read(ReqId(i), a, 64)
            };
            t += step() % 25_000;
            c.advance_to(t, &mut out);
            if c.can_accept(req.cmd, req.addr, req.size) {
                c.try_send(req, t).unwrap();
            }
        }
        let end = c.drain(&mut out);
        let report = c.report("ctrl", end);
        let fm = c.fault_model().unwrap();
        (fm.log_text(), report.to_json(), report)
    };

    let (log1, json1, report) = run();
    let (log2, json2, _) = run();
    assert_eq!(log1, log2, "fault log not deterministic");
    assert_eq!(json1, json2, "stats JSON not deterministic");
    assert!(!log1.is_empty(), "no faults injected at a high rate");
    assert!(
        report.get("ras_corrected").unwrap() > 0.0,
        "SEC-DED corrected nothing"
    );
    // SEC-DED only goes silent on the modelled multi-symbol syndrome
    // alias, never on a single-symbol fault.
    assert!(
        report.get("ras_silent").unwrap() <= report.get("ras_rank_failures").unwrap(),
        "single-symbol fault escaped SEC-DED"
    );
}

/// Link-error retries on the cycle model: every request still completes,
/// retries are counted, and the run stays deterministic.
#[test]
fn cycle_link_retries_complete_and_count() {
    use dramctrl_cycle::RasConfig;

    let run = |ras: Option<RasConfig>| {
        let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
        cfg.ras = ras;
        let mut c = CycleCtrl::new(cfg).unwrap();
        let mut out = Vec::new();
        for i in 0..200u64 {
            let t = i * 10_000;
            c.advance_to(t, &mut out);
            let req = if i % 4 == 0 {
                MemRequest::write(ReqId(i), (i % 16) * 4096 + i * 64, 64)
            } else {
                MemRequest::read(ReqId(i), (i % 16) * 4096 + i * 64, 64)
            };
            if c.can_accept(req.cmd, req.addr, req.size) {
                c.try_send(req, t).unwrap();
            }
        }
        let end = c.drain(&mut out);
        (out.len(), c.report("ctrl", end))
    };

    let mut ras = RasConfig::new(0x11E);
    ras.link_error_rate = 0.05;
    let (n_plain, _) = run(None);
    let (n1, r1) = run(Some(ras.clone()));
    let (n2, r2) = run(Some(ras));
    assert_eq!(n1, n_plain, "retries lost responses");
    assert_eq!(n1, n2, "faulty run response count not deterministic");
    assert_eq!(r1.to_json(), r2.to_json(), "faulty run not deterministic");
    assert!(r1.get("ras_retries").unwrap() > 0.0, "no retries recorded");
    assert!(
        r1.get("ras_crc_errors").unwrap() + r1.get("ras_parity_errors").unwrap() > 0.0,
        "no link errors recorded"
    );
}

/// Checkpoint/restore equivalence on the cycle model: pause a run
/// mid-flight, snapshot, restore into a *fresh* controller built from the
/// same configuration, and run both to completion in lockstep — every
/// response, the drain tick, the rendered report and the post-pause trace
/// suffix must be byte-identical to the uninterrupted run. Covers the
/// policy × scheduler matrix plus a RAS-armed, write-snooping run.
#[test]
fn checkpoint_restore_equivalent() {
    use dramctrl_cycle::{CycleCtrl, EccMode, RasConfig};
    use dramctrl_kernel::snap::{fingerprint, SnapReader, SnapState, SnapWriter};
    use dramctrl_obs::ChromeTracer;

    let mut cfgs = Vec::new();
    for policy in [CyclePagePolicy::Open, CyclePagePolicy::Closed] {
        for sched in [CycleSched::Fcfs, CycleSched::FrFcfs] {
            let mut cfg = CycleConfig::new(presets::ddr3_1333_x64());
            cfg.page_policy = policy;
            cfg.scheduling = sched;
            cfgs.push(cfg);
        }
    }
    let mut ras_cfg = CycleConfig::new(presets::ddr3_1333_x64());
    ras_cfg.ras = Some(RasConfig::from_error_rate(2e11, 0xC4C1).with_ecc(EccMode::SecDed));
    ras_cfg.write_snooping = true;
    cfgs.push(ras_cfg);

    for cfg in cfgs {
        let fp = fingerprint(format!("{cfg:?}").as_bytes());
        let label = format!("{}/{:?}", cfg.page_policy, cfg.scheduling);
        let mut base = CycleCtrl::with_probe(cfg.clone(), ChromeTracer::new()).unwrap();
        let mut resumed: Option<CycleCtrl<ChromeTracer>> = None;

        let mut state = 0xC4C2u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut t = 0;
        let (mut bout, mut rout) = (Vec::new(), Vec::new());
        for i in 0..300u64 {
            if i == 150 {
                let mut w = SnapWriter::new(fp);
                base.save_state(&mut w);
                let bytes = w.into_bytes();
                assert!(bytes.len() > 64, "implausibly small snapshot");
                // A mismatched fingerprint must be refused loudly.
                assert!(SnapReader::new(&bytes, fp ^ 1).is_err());
                let mut fresh = CycleCtrl::with_probe(cfg.clone(), ChromeTracer::new()).unwrap();
                let mut r = SnapReader::new(&bytes, fp).unwrap();
                fresh.restore_state(&mut r).unwrap();
                assert!(r.is_exhausted(), "trailing snapshot bytes ({label})");
                // From here the baseline records only the trace suffix,
                // directly comparable with the resumed controller's trace.
                let _prefix = std::mem::take(base.probe_mut());
                bout.clear();
                resumed = Some(fresh);
            }
            let a = addr((step() % 8) as u32, step() % 64, step() % 64);
            let req = if step() % 3 == 0 {
                MemRequest::write(ReqId(i), a, 64)
            } else {
                MemRequest::read(ReqId(i), a, 64)
            };
            t += step() % 20_000;
            base.advance_to(t, &mut bout);
            let sent = base.try_send(req, t).is_ok();
            if let Some(res) = resumed.as_mut() {
                res.advance_to(t, &mut rout);
                assert_eq!(bout, rout, "responses diverged at tick {t} ({label})");
                assert_eq!(
                    sent,
                    res.try_send(req, t).is_ok(),
                    "flow control diverged at tick {t} ({label})"
                );
            }
        }
        let end_b = base.drain(&mut bout);
        let res = resumed.as_mut().expect("pause point reached");
        let end_r = res.drain(&mut rout);
        assert_eq!(end_b, end_r, "drain ticks diverged ({label})");
        assert_eq!(bout, rout, "final responses diverged ({label})");
        assert_eq!(
            base.report("ctrl", end_b).to_json(),
            res.report("ctrl", end_r).to_json(),
            "reports diverged ({label})"
        );
        if let (Some(fb), Some(fr)) = (base.fault_model(), res.fault_model()) {
            assert_eq!(fb.log_text(), fr.log_text(), "fault logs diverged");
            assert!(!fb.log_text().is_empty(), "RAS run injected no faults");
        }
        let resumed = resumed.take().expect("pause point reached");
        assert_eq!(
            base.into_probe().to_json(),
            resumed.into_probe().to_json(),
            "trace suffixes diverged ({label})"
        );
    }
}
