//! Journaled execution and resume: merged reports must be byte-identical
//! to an uninterrupted run's, at any worker count, and the journal append
//! must be the single commit point.

use dramctrl_campaign::{
    run_campaign, run_campaign_journaled, Campaign, CampaignJournal, ExecutorConfig, JobMetrics,
    JobOutcome, JobRecord, JobSpec,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-resume-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(name)
}

fn campaign() -> Campaign {
    Campaign::new("resume-test", 77)
        .read_pcts([0, 25, 50, 75, 100])
        .requests([100, 200])
}

/// Deterministic toy runner: metrics depend only on the spec.
fn toy_runner(job: &JobSpec) -> JobMetrics {
    let mut acc = job.seed;
    for _ in 0..500 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    JobMetrics::new()
        .with("acc_low", (acc & 0xFFFF) as f64)
        .with("index", job.index as f64)
}

#[test]
fn journaled_full_run_matches_plain_run() {
    let c = campaign();
    let plain = run_campaign(&c, &ExecutorConfig::serial(), toy_runner);
    let p = tmp("full.jsonl");
    let mut j = CampaignJournal::create(&p, &c).unwrap();
    let journaled = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    assert_eq!(plain.to_jsonl(), journaled.to_jsonl());
    // Every report line is in the journal, byte for byte, after the header.
    let text = std::fs::read_to_string(&p).unwrap();
    let mut journal_lines: Vec<&str> = text.lines().skip(1).collect();
    journal_lines.sort_unstable();
    let jsonl = plain.to_jsonl();
    let mut report_lines: Vec<&str> = jsonl.lines().collect();
    report_lines.sort_unstable();
    assert_eq!(journal_lines, report_lines);
}

#[test]
fn resume_after_partial_run_is_byte_identical_at_any_worker_count() {
    let c = campaign();
    let baseline = run_campaign(&c, &ExecutorConfig::serial(), toy_runner);
    let jobs = c.expand();

    for workers in [1usize, 2, 8] {
        let p = tmp(&format!("partial-{workers}.jsonl"));
        // Simulate a run killed after 4 of 10 jobs: only those records made
        // it into the durable journal.
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        for job in jobs.iter().take(4) {
            j.commit(&JobRecord {
                job: job.clone(),
                outcome: JobOutcome::Completed {
                    metrics: toy_runner(job),
                    attempts: 1,
                },
            })
            .unwrap();
        }
        drop(j);

        // Resume from disk at a different worker count.
        let mut j = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(j.completed().len(), 4);
        let ran = AtomicUsize::new(0);
        let cfg = ExecutorConfig::default().with_workers(workers);
        let resumed = run_campaign_journaled(&c, &cfg, &mut j, |job| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(job.index >= 4, "journaled job {} re-ran", job.index);
            toy_runner(job)
        });

        // Only the remainder ran, and the merged report is byte-identical.
        assert_eq!(ran.load(Ordering::Relaxed), jobs.len() - 4);
        assert_eq!(baseline.to_jsonl(), resumed.to_jsonl());
        assert_eq!(
            baseline.table(&["acc_low", "index"]).render(),
            resumed.table(&["acc_low", "index"]).render()
        );
        // The finished journal holds every job exactly once.
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 1 + jobs.len());
        let resumed_again = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(resumed_again.completed().len(), jobs.len());
    }
}

#[test]
fn artifacts_before_commit_rerun_cleanly_without_double_append() {
    // Satellite guarantee: a job that wrote its artifacts but died before
    // the journal append re-runs on resume — the artifact is atomically
    // overwritten and the journal gains exactly one record for the job.
    let c = Campaign::new("artifact-test", 5).read_pcts([0, 50, 100]);
    let jobs = c.expand();
    let dir = tmp("artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = |i: usize| dir.join(format!("job-{i}.txt"));

    let runner = |job: &JobSpec| {
        dramctrl_kernel::fsio::write_atomic(
            artifact(job.index),
            format!("metrics for job {}\n", job.index),
        )
        .unwrap();
        toy_runner(job)
    };

    let p = tmp("artifact.jsonl");
    let mut j = CampaignJournal::create(&p, &c).unwrap();
    // Job 0 completed and committed; job 1 "crashed" after writing its
    // artifact but before its journal append.
    j.commit(&JobRecord {
        job: jobs[0].clone(),
        outcome: JobOutcome::Completed {
            metrics: toy_runner(&jobs[0]),
            attempts: 1,
        },
    })
    .unwrap();
    std::fs::write(artifact(1), "torn artifact from the crashed run").unwrap();
    drop(j);

    let mut j = CampaignJournal::resume(&p, &c).unwrap();
    let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, runner);
    assert_eq!(report.failed(), 0);
    // The half-done job re-ran: its artifact was rewritten whole.
    assert_eq!(
        std::fs::read_to_string(artifact(1)).unwrap(),
        "metrics for job 1\n"
    );
    // And the journal holds each job exactly once — no double append.
    let text = std::fs::read_to_string(&p).unwrap();
    assert_eq!(text.lines().count(), 1 + jobs.len());
    let baseline = run_campaign(&c, &ExecutorConfig::serial(), runner);
    assert_eq!(baseline.to_jsonl(), report.to_jsonl());
}
