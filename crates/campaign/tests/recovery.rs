//! Journal recovery under damage, shard merging, and group commit:
//!
//! - a torn tail (the partial line a crash mid-append leaves) is dropped
//!   and truncated at *every* possible cut point, and the resumed run is
//!   byte-identical to an uninterrupted one;
//! - duplicate records keep the first committed copy;
//! - trailing garbage that *looks* like a durable line (newline present)
//!   is a loud error, never silently skipped;
//! - shard journals merge into the unsharded report byte for byte, and a
//!   missing shard is a loud `Incomplete` error;
//! - group commit changes fsync cadence, never bytes.

use dramctrl_campaign::{
    merge_journals, run_campaign, run_campaign_journaled, run_campaign_shard, Campaign,
    CampaignJournal, ExecutorConfig, JobMetrics, JobSpec, JournalError,
};
use std::path::PathBuf;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dramctrl-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.join(name)
}

fn campaign() -> Campaign {
    Campaign::new("recovery-test", 1234)
        .read_pcts([0, 30, 60, 100])
        .requests([100, 300])
}

fn toy_runner(job: &JobSpec) -> JobMetrics {
    let mut acc = job.seed;
    for _ in 0..500 {
        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    }
    JobMetrics::new()
        .with("acc_low", (acc & 0xFFFF) as f64)
        .with("index", job.index as f64)
}

/// A full journaled run's journal text and report JSONL.
fn full_run(name: &str) -> (PathBuf, String, String) {
    let c = campaign();
    let p = tmp(name);
    let _ = std::fs::remove_file(&p);
    let mut j = CampaignJournal::create(&p, &c).unwrap();
    let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    drop(j);
    let text = std::fs::read_to_string(&p).unwrap();
    (p, text, report.to_jsonl())
}

#[test]
fn truncation_at_every_byte_of_the_last_record_resumes_cleanly() {
    let c = campaign();
    let (p, text, want) = full_run("torn.jsonl");
    // Cut anywhere strictly inside the last line (from just after the
    // previous newline to just before the final newline): each cut is a
    // crash mid-append of the final record.
    let last_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
    for cut in last_start..text.len() - 1 {
        std::fs::write(&p, &text.as_bytes()[..cut]).unwrap();
        let mut j = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(
            j.completed().len(),
            c.len() - 1,
            "cut at byte {cut}: exactly the torn record is lost"
        );
        assert!(cut == last_start || j.dropped_torn_tail(), "cut at {cut}");
        // The file was truncated back to the last durable line.
        assert_eq!(std::fs::read_to_string(&p).unwrap(), text[..last_start]);
        let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
        assert_eq!(report.to_jsonl(), want, "cut at byte {cut}");
        // Restore the intact journal for the next cut.
        std::fs::write(&p, &text).unwrap();
    }
}

#[test]
fn duplicate_records_keep_the_first_copy() {
    let c = campaign();
    let (p, text, want) = full_run("dup.jsonl");
    // Append a forged duplicate of the first record (attempts doctored):
    // keep-first must make the original canonical.
    let first_record = text.lines().nth(1).unwrap();
    let forged = first_record.replace("\"attempts\":1", "\"attempts\":9");
    assert_ne!(first_record, forged, "doctoring must change the line");
    std::fs::write(&p, format!("{text}{forged}\n")).unwrap();

    let outcomes = CampaignJournal::replay(&p, &c).unwrap();
    assert_eq!(outcomes.len(), c.len());
    assert_eq!(outcomes[&0].attempts(), 1, "first copy wins");

    let mut j = CampaignJournal::resume(&p, &c).unwrap();
    let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    assert_eq!(report.to_jsonl(), want);
}

#[test]
fn trailing_garbage_without_newline_is_dropped_with_newline_is_loud() {
    let c = campaign();
    let (p, text, want) = full_run("garbage.jsonl");

    // No newline: indistinguishable from a torn append — dropped.
    std::fs::write(&p, format!("{text}{{\"job\":gar")).unwrap();
    let mut j = CampaignJournal::resume(&p, &c).unwrap();
    assert!(j.dropped_torn_tail());
    assert_eq!(j.completed().len(), c.len());
    let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    assert_eq!(report.to_jsonl(), want);

    // With a newline the line claims to be durable and complete; garbage
    // there means corruption, and silence would hide lost results.
    std::fs::write(&p, format!("{text}this is not a record\n")).unwrap();
    let err = CampaignJournal::resume(&p, &c).unwrap_err();
    assert!(
        matches!(err, JournalError::Corrupt { .. }),
        "expected Corrupt, got {err}"
    );

    // Same contract for the read-only replay path.
    assert!(CampaignJournal::replay(&p, &c).is_err());
}

#[test]
fn replay_never_truncates_a_live_journal() {
    let c = campaign();
    let (p, text, _) = full_run("live.jsonl");
    let torn = format!("{text}{{\"torn");
    std::fs::write(&p, &torn).unwrap();
    let outcomes = CampaignJournal::replay(&p, &c).unwrap();
    assert_eq!(outcomes.len(), c.len());
    assert_eq!(
        std::fs::read_to_string(&p).unwrap(),
        torn,
        "replay is read-only: another process may still be appending"
    );
}

#[test]
fn shard_journals_merge_into_the_unsharded_report() {
    let c = campaign();
    let want = run_campaign(&c, &ExecutorConfig::serial(), toy_runner).to_jsonl();
    let shards = 3u32;
    let paths: Vec<PathBuf> = (0..shards)
        .map(|i| {
            let p = tmp(&format!("shard-{i}.jsonl"));
            let _ = std::fs::remove_file(&p);
            let mut j = CampaignJournal::create(&p, &c).unwrap();
            let partial = run_campaign_shard(
                &c,
                &ExecutorConfig::serial(),
                &mut j,
                (i, shards),
                toy_runner,
            );
            // A shard's own report covers exactly its residue class.
            let mine = (0..c.len()).filter(|k| k % shards as usize == i as usize);
            assert_eq!(partial.records.len(), mine.count());
            p
        })
        .collect();

    let merged = merge_journals(&c, &paths).unwrap();
    assert_eq!(
        merged.to_jsonl(),
        want,
        "merge == unsharded run, byte for byte"
    );
    assert_eq!(merged.workers, 0, "a merge is not a run");

    // Overlapping journals (a full journal plus a shard's) dedup
    // keep-first instead of double-counting.
    let full = tmp("shard-full.jsonl");
    let _ = std::fs::remove_file(&full);
    let mut j = CampaignJournal::create(&full, &c).unwrap();
    run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    drop(j);
    let mut overlapping = paths.clone();
    overlapping.push(full);
    assert_eq!(merge_journals(&c, &overlapping).unwrap().to_jsonl(), want);
}

#[test]
fn merging_with_a_missing_shard_is_incomplete() {
    let c = campaign();
    let a = tmp("missing-0.jsonl");
    let _ = std::fs::remove_file(&a);
    let mut j = CampaignJournal::create(&a, &c).unwrap();
    run_campaign_shard(&c, &ExecutorConfig::serial(), &mut j, (0, 2), toy_runner);
    drop(j);

    let err = merge_journals(&c, &[&a]).unwrap_err();
    match err {
        JournalError::Incomplete {
            missing,
            first_missing,
            total,
        } => {
            assert_eq!(missing, c.len() / 2);
            assert_eq!(first_missing, 1, "index 1 belongs to the absent shard");
            assert_eq!(total, c.len());
        }
        other => panic!("expected Incomplete, got {other}"),
    }
}

#[test]
fn group_commit_changes_fsync_cadence_never_bytes() {
    let c = campaign();
    let (_, plain_text, plain_jsonl) = full_run("gc-off.jsonl");

    let p = tmp("gc-on.jsonl");
    let _ = std::fs::remove_file(&p);
    let mut j = CampaignJournal::create(&p, &c).unwrap();
    // A window far longer than the run: everything rides one batch.
    j.set_group_commit(Some(Duration::from_secs(3_600)));
    let report = run_campaign_journaled(&c, &ExecutorConfig::serial(), &mut j, toy_runner);
    j.sync().unwrap();
    drop(j);

    assert_eq!(report.to_jsonl(), plain_jsonl);
    assert_eq!(
        std::fs::read_to_string(&p).unwrap(),
        plain_text,
        "group commit is invisible in the journal bytes"
    );

    // And a resume of a group-committed journal behaves identically.
    let j2 = CampaignJournal::resume(&p, &c).unwrap();
    assert_eq!(j2.completed().len(), c.len());
}
