//! The campaign executor: a work-stealing thread pool with panic
//! isolation and a dedicated progress/collection thread.
//!
//! Workers pull job indices from a shared atomic counter (the cheapest
//! possible work-stealing deque for identical-cost jobs), run the
//! caller's runner under [`std::panic::catch_unwind`], retry panicked
//! jobs up to a bound, and stream `(index, outcome)` pairs over a
//! channel to a collector thread that also reports progress. Results are
//! stored by job index, so the final report is independent of scheduling
//! order and worker count.

use crate::journal::CampaignJournal;
use crate::report::{CampaignReport, JobMetrics, JobRecord};
use crate::spec::{Campaign, JobSpec};
use dramctrl_kernel::backoff::deterministic_ms;
use dramctrl_obs::metrics::{
    Counter, FloatCounter, Gauge, Histogram, Registry, LATENCY_BUCKETS, SIZE_BUCKETS,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Minimum interval between progress-line rewrites: at tens of thousands
/// of jobs per second, unthrottled `\r` rewrites cost more than the jobs.
const PROGRESS_INTERVAL: Duration = Duration::from_millis(100);

/// What happened to one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The job ran to completion (possibly after retries).
    Completed {
        /// The metrics it produced.
        metrics: JobMetrics,
        /// Attempts used (1 = first try succeeded).
        attempts: u32,
    },
    /// Every attempt panicked; the campaign carried on without it.
    Failed {
        /// The final panic's message.
        panic_msg: String,
        /// Attempts used (equals the executor's `max_attempts`).
        attempts: u32,
    },
}

impl JobOutcome {
    /// Whether this job ultimately failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, JobOutcome::Failed { .. })
    }

    /// Attempts used.
    pub fn attempts(&self) -> u32 {
        match self {
            JobOutcome::Completed { attempts, .. } | JobOutcome::Failed { attempts, .. } => {
                *attempts
            }
        }
    }
}

/// Where progress updates go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No progress output (library / test use).
    #[default]
    Silent,
    /// Carriage-return progress line on stderr with ETA.
    Stderr,
}

/// Operational metrics for one executor run, pre-registered in a
/// [`Registry`] so a service embedding the executor exposes them over
/// its `/metrics` endpoint. All handles are cheap atomic clones; when
/// [`ExecutorConfig::metrics`] is `None` the executor records nothing
/// and costs one branch per job — report bytes are identical either
/// way (metrics watch the executor, never steer it).
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Jobs completed (possibly after retries).
    pub units_completed: Counter,
    /// Jobs recorded as failed after the retry budget.
    pub units_failed: Counter,
    /// Extra attempts spent on panicked jobs (attempts beyond the first).
    pub retries: Counter,
    /// Records per journal commit batch.
    pub batch_records: Histogram,
    /// Journal batch-commit latency (append + fsync), seconds.
    pub commit_seconds: Histogram,
    /// Total seconds workers spent running jobs.
    pub busy_seconds: FloatCounter,
    /// Total seconds workers existed but were not running jobs.
    pub idle_seconds: FloatCounter,
    /// Finished jobs per second of campaign wall time so far.
    pub units_per_second: Gauge,
}

impl ExecMetrics {
    /// Registers the executor families in `registry` and returns the
    /// handles. Call once per process; repeated calls return handles to
    /// the same atomics.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        Self {
            units_completed: registry.counter(
                "dramctrl_executor_units_total",
                "Executor jobs finished, by outcome.",
                &[("outcome", "completed")],
            ),
            units_failed: registry.counter(
                "dramctrl_executor_units_total",
                "Executor jobs finished, by outcome.",
                &[("outcome", "failed")],
            ),
            retries: registry.counter(
                "dramctrl_executor_retries_total",
                "Extra attempts spent re-running panicked jobs.",
                &[],
            ),
            batch_records: registry.histogram(
                "dramctrl_executor_batch_records",
                "Records per journal commit batch.",
                &[],
                SIZE_BUCKETS,
            ),
            commit_seconds: registry.histogram(
                "dramctrl_executor_commit_seconds",
                "Journal batch-commit latency (append + fsync).",
                &[],
                LATENCY_BUCKETS,
            ),
            busy_seconds: registry.fcounter(
                "dramctrl_executor_worker_busy_seconds_total",
                "Seconds workers spent running jobs.",
                &[],
            ),
            idle_seconds: registry.fcounter(
                "dramctrl_executor_worker_idle_seconds_total",
                "Seconds workers existed but ran no job.",
                &[],
            ),
            units_per_second: registry.gauge(
                "dramctrl_executor_units_per_second",
                "Finished jobs per second of campaign wall time.",
                &[],
            ),
        }
    }
}

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Maximum attempts per job (must be ≥ 1); a job failing this many
    /// times is recorded as [`JobOutcome::Failed`].
    pub max_attempts: u32,
    /// Base backoff before the second attempt of a panicked job, in
    /// milliseconds; doubles per further attempt, plus a deterministic
    /// per-(job, attempt) jitter. `0` retries immediately.
    pub retry_backoff_ms: u64,
    /// Progress reporting sink.
    pub progress: Progress,
    /// Operational metric handles; `None` (the default) records nothing.
    pub metrics: Option<ExecMetrics>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            max_attempts: 2,
            retry_backoff_ms: 10,
            progress: Progress::Silent,
            metrics: None,
        }
    }
}

impl ExecutorConfig {
    /// A serial configuration (one worker) — useful for baselines.
    pub fn serial() -> Self {
        Self {
            workers: 1,
            ..Self::default()
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the retry bound.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// Sets the base retry backoff in milliseconds (`0` disables it).
    pub fn with_retry_backoff_ms(mut self, ms: u64) -> Self {
        self.retry_backoff_ms = ms;
        self
    }

    /// Sets the progress sink.
    pub fn with_progress(mut self, progress: Progress) -> Self {
        self.progress = progress;
        self
    }

    /// Attaches operational metric handles (see [`ExecMetrics`]).
    pub fn with_metrics(mut self, metrics: ExecMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    fn effective_workers(&self, total: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };
        let w = if self.workers == 0 {
            hw()
        } else {
            self.workers
        };
        w.clamp(1, total.max(1))
    }
}

/// Expands `campaign` and runs every job through `runner` on a worker
/// pool, returning the aggregated report.
///
/// `runner` maps a [`JobSpec`] to its [`JobMetrics`]; it must be
/// deterministic in the spec (including `spec.seed`) for the campaign's
/// reproducibility guarantee to hold. Panics inside the runner are
/// caught, retried up to [`ExecutorConfig::max_attempts`] times, and
/// recorded as [`JobOutcome::Failed`] — a panicking job never aborts the
/// campaign.
///
/// # Panics
/// Panics if `max_attempts` is zero, if the campaign has an empty axis,
/// or if an internal executor thread is broken (never by a runner
/// panic).
pub fn run_campaign<F>(campaign: &Campaign, cfg: &ExecutorConfig, runner: F) -> CampaignReport
where
    F: Fn(&JobSpec) -> JobMetrics + Sync,
{
    run_campaign_inner(campaign, cfg, None, None, runner)
}

/// [`run_campaign`] with a durable write-ahead journal: every finished
/// job is committed to `journal` (appended and fsync'd) *before* it
/// counts as done, and jobs the journal already records — from an earlier
/// run that crashed or was killed — are skipped, their outcomes merged
/// into the report from the journal.
///
/// The journal append is the single commit point: a job that produced
/// artifacts but died before its append re-runs cleanly on resume, and a
/// journaled job is never appended twice. The merged
/// [`CampaignReport::to_jsonl`] is byte-identical to an uninterrupted
/// run's at any worker count, because journaled lines and report lines
/// come from one renderer and per-job results depend only on the spec.
///
/// # Panics
/// Panics like [`run_campaign`], and additionally if a journal append
/// fails — a record that cannot be made durable must not be reported as
/// done.
pub fn run_campaign_journaled<F>(
    campaign: &Campaign,
    cfg: &ExecutorConfig,
    journal: &mut CampaignJournal,
    runner: F,
) -> CampaignReport
where
    F: Fn(&JobSpec) -> JobMetrics + Sync,
{
    run_campaign_inner(campaign, cfg, Some(journal), None, runner)
}

/// [`run_campaign_journaled`] restricted to one deterministic shard of the
/// campaign: only jobs whose index `i` satisfies `i % count == index` are
/// dispatched (journaled jobs are still skipped and merged in, whichever
/// shard committed them).
///
/// Sharding is by job *index*, so `N` processes — or hosts — given shards
/// `0/N .. N-1/N` of the same campaign partition the work exactly, and
/// their journals merge back into the uninterrupted report via
/// [`merge_journals`](crate::merge_journals): per-job seeds depend only on
/// `(campaign seed, index)`, never on which shard ran the job.
///
/// The returned report holds records for the jobs this process has
/// outcomes for (its shard plus anything already journaled) — a *partial*
/// view; the full report comes from the merge.
///
/// # Panics
/// Panics like [`run_campaign_journaled`], and if `index >= count` or
/// `count == 0`.
pub fn run_campaign_shard<F>(
    campaign: &Campaign,
    cfg: &ExecutorConfig,
    journal: &mut CampaignJournal,
    shard: (u32, u32),
    runner: F,
) -> CampaignReport
where
    F: Fn(&JobSpec) -> JobMetrics + Sync,
{
    assert!(
        shard.1 > 0 && shard.0 < shard.1,
        "shard {}/{} is not a valid shard (need index < count)",
        shard.0,
        shard.1
    );
    run_campaign_inner(campaign, cfg, Some(journal), Some(shard), runner)
}

fn run_campaign_inner<F>(
    campaign: &Campaign,
    cfg: &ExecutorConfig,
    journal: Option<&mut CampaignJournal>,
    shard: Option<(u32, u32)>,
    runner: F,
) -> CampaignReport
where
    F: Fn(&JobSpec) -> JobMetrics + Sync,
{
    assert!(cfg.max_attempts >= 1, "max_attempts must be at least 1");
    let jobs = campaign.expand();
    let total = jobs.len();

    // Seed the outcome table with what the journal already holds; only
    // the remainder is dispatched to workers.
    let mut prefilled: Vec<Option<JobOutcome>> = (0..total).map(|_| None).collect();
    if let Some(j) = journal.as_deref() {
        for (&i, outcome) in j.completed() {
            prefilled[i] = Some(outcome.clone());
        }
    }
    let in_shard = |i: usize| shard.map_or(true, |(idx, n)| i % n as usize == idx as usize);
    let pending: Vec<usize> = (0..total)
        .filter(|&i| prefilled[i].is_none() && in_shard(i))
        .collect();

    let workers = cfg.effective_workers(pending.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome)>();
    let start = Instant::now();

    let outcomes = std::thread::scope(|s| {
        let jobs = &jobs;
        let next = &next;
        let runner = &runner;
        let pending = &pending;
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || {
                let spawned = Instant::now();
                let mut busy = 0.0f64;
                loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending.get(slot) else { break };
                    let job_started = Instant::now();
                    let outcome = run_one(&jobs[i], cfg, runner);
                    busy += job_started.elapsed().as_secs_f64();
                    if let Some(m) = &cfg.metrics {
                        m.retries
                            .add(u64::from(outcome.attempts().saturating_sub(1)));
                        if outcome.is_failed() {
                            m.units_failed.inc();
                        } else {
                            m.units_completed.inc();
                        }
                    }
                    if tx.send((i, outcome)).is_err() {
                        break;
                    }
                }
                if let Some(m) = &cfg.metrics {
                    m.busy_seconds.add(busy);
                    m.idle_seconds
                        .add((spawned.elapsed().as_secs_f64() - busy).max(0.0));
                }
            });
        }
        drop(tx);

        let name = campaign.name.clone();
        let progress = cfg.progress;
        let exec_metrics = cfg.metrics.clone();
        let to_run = pending.len();
        let collector = s.spawn(move || {
            let mut journal = journal;
            let mut outcomes = prefilled;
            let mut done = 0usize;
            let mut failed = 0usize;
            let mut batch: Vec<(usize, JobOutcome)> = Vec::new();
            let mut last_progress: Option<Instant> = None;
            let mut line_width = 0usize;
            while let Ok(first) = rx.recv() {
                // Greedy drain: everything the workers have finished since
                // the last iteration commits as one batch — one journal
                // fsync amortised over the whole batch instead of one per
                // record. Under load the batch grows to match the workers'
                // rate, so the fsync never becomes the bottleneck again.
                batch.push(first);
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                }
                // The commit point: the records hit the durable journal
                // before their outcomes are accepted into the report.
                // Lines render from borrows of the job table and the
                // batch — no per-record JobSpec/JobOutcome clones.
                if let Some(j) = journal.as_deref_mut() {
                    let commit_started = Instant::now();
                    j.commit_batch(batch.iter().map(|&(i, ref o)| (&jobs[i], o)))
                        .unwrap_or_else(|e| {
                            panic!(
                                "cannot commit {} job(s) to the campaign journal at {}: {e}",
                                batch.len(),
                                j.path().display()
                            )
                        });
                    if let Some(m) = &exec_metrics {
                        m.commit_seconds
                            .observe(commit_started.elapsed().as_secs_f64());
                        m.batch_records.observe(batch.len() as f64);
                    }
                }
                for (i, outcome) in batch.drain(..) {
                    done += 1;
                    if outcome.is_failed() {
                        failed += 1;
                    }
                    outcomes[i] = Some(outcome);
                }
                let elapsed = start.elapsed().as_secs_f64();
                if let Some(m) = &exec_metrics {
                    if elapsed > 0.0 {
                        m.units_per_second.set(done as f64 / elapsed);
                    }
                }
                // Progress is throttled: at high job rates rewriting the
                // terminal per record costs more than the jobs themselves.
                if progress == Progress::Stderr
                    && last_progress.map_or(true, |t| t.elapsed() >= PROGRESS_INTERVAL)
                {
                    last_progress = Some(Instant::now());
                    let eta = elapsed / done as f64 * (to_run - done) as f64;
                    let line =
                        format!("[{name}] {done}/{to_run} done, {failed} failed, ETA {eta:.0}s");
                    eprint!("\r{}", pad_progress(&mut line_width, &line));
                }
            }
            // The channel is closed: force any batch the group-commit
            // window is still holding open onto disk before the report is
            // built from these outcomes.
            if let Some(j) = journal {
                j.sync().unwrap_or_else(|e| {
                    panic!(
                        "cannot sync the campaign journal at {}: {e}",
                        j.path().display()
                    )
                });
            }
            // The terminal line is unconditional — never throttled — so a
            // campaign that finishes inside the 100ms window still prints
            // its final count; padding covers any longer ETA line that a
            // throttled rewrite left on the terminal.
            if progress == Progress::Stderr && to_run > 0 {
                let line = format!("[{name}] {done}/{to_run} done, {failed} failed");
                eprintln!("\r{}", pad_progress(&mut line_width, &line));
            }
            outcomes
        });
        collector.join().expect("collector thread panicked")
    });

    // Unsharded, every index must have an outcome; a shard only has
    // outcomes for its own indices plus whatever the journal carried in.
    let records = jobs
        .into_iter()
        .zip(outcomes)
        .filter_map(|(job, outcome)| match outcome {
            Some(outcome) => Some(JobRecord { job, outcome }),
            None if shard.is_some() => None,
            None => panic!("every job index is executed exactly once"),
        })
        .collect();
    CampaignReport {
        name: campaign.name.clone(),
        seed: campaign.seed,
        workers,
        wall_secs: start.elapsed().as_secs_f64(),
        records,
    }
}

/// Pads `line` with spaces to cover the widest progress line printed so
/// far, so a `\r` rewrite by a shorter line (the terminal line drops the
/// ETA; ETAs shrink as the campaign drains) never leaves stale trailing
/// characters. Tracks the running maximum in `width`.
fn pad_progress(width: &mut usize, line: &str) -> String {
    let mut s = line.to_owned();
    if s.len() < *width {
        s.push_str(&" ".repeat(*width - s.len()));
    }
    *width = (*width).max(line.len());
    s
}

fn run_one<F>(job: &JobSpec, cfg: &ExecutorConfig, runner: &F) -> JobOutcome
where
    F: Fn(&JobSpec) -> JobMetrics + Sync,
{
    let mut attempts = 0;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| runner(job))) {
            Ok(metrics) => return JobOutcome::Completed { metrics, attempts },
            Err(payload) => {
                if attempts >= cfg.max_attempts {
                    return JobOutcome::Failed {
                        panic_msg: panic_message(payload.as_ref()),
                        attempts,
                    };
                }
                let ms = retry_backoff_ms(cfg.retry_backoff_ms, job.seed, attempts);
                if ms > 0 {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }
    }
}

/// Backoff before re-running a job that has already panicked `attempt`
/// times: the kernel's deterministic exponential-with-jitter schedule,
/// keyed by `(job_seed, attempt)` — never the wall clock or the worker
/// id — so reruns pace their retries identically at any worker count.
fn retry_backoff_ms(base_ms: u64, job_seed: u64, attempt: u32) -> u64 {
    deterministic_ms(base_ms, job_seed, attempt)
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Campaign;
    use std::sync::atomic::AtomicU32;

    /// A runner that records which thread computed each job, for
    /// asserting that parallelism actually happened.
    fn toy_runner(job: &JobSpec) -> JobMetrics {
        // Busy-ish work keyed off the seed so results differ per job.
        let mut acc = job.seed;
        for _ in 0..1_000 {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        }
        JobMetrics::new()
            .with("acc_low", (acc & 0xFFFF) as f64)
            .with("index", job.index as f64)
    }

    fn campaign(n_read_pcts: u8) -> Campaign {
        Campaign::new("exec-test", 31).read_pcts(0..n_read_pcts)
    }

    #[test]
    fn outcomes_are_keyed_by_job_not_schedule() {
        let c = campaign(24);
        for workers in [1usize, 3, 8] {
            let cfg = ExecutorConfig::default().with_workers(workers);
            let r = run_campaign(&c, &cfg, toy_runner);
            assert_eq!(r.workers, workers.min(24));
            assert_eq!(r.records.len(), 24);
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.job.index, i);
                match &rec.outcome {
                    JobOutcome::Completed { metrics, attempts } => {
                        assert_eq!(*attempts, 1);
                        assert_eq!(metrics.get("index"), Some(i as f64));
                    }
                    JobOutcome::Failed { .. } => panic!("toy runner never fails"),
                }
            }
        }
    }

    #[test]
    fn worker_zero_uses_available_parallelism() {
        let r = run_campaign(&campaign(4), &ExecutorConfig::default(), toy_runner);
        assert!(r.workers >= 1);
        assert!(r.workers <= 4, "clamped to job count");
    }

    #[test]
    fn panicking_job_is_retried_then_reported() {
        // Quiet hook: these panics are intentional.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let c = campaign(8);
        let tries = AtomicU32::new(0);
        let cfg = ExecutorConfig::serial().with_max_attempts(3);
        let r = run_campaign(&c, &cfg, |job| {
            if job.index == 5 {
                tries.fetch_add(1, Ordering::Relaxed);
                panic!("job 5 always dies (read_pct={})", job.read_pct);
            }
            toy_runner(job)
        });
        std::panic::set_hook(prev);

        assert_eq!(tries.load(Ordering::Relaxed), 3, "bounded retry");
        assert_eq!(r.failed(), 1);
        assert_eq!(r.completed(), 7, "campaign did not abort");
        match &r.records[5].outcome {
            JobOutcome::Failed {
                panic_msg,
                attempts,
            } => {
                assert_eq!(*attempts, 3);
                assert!(panic_msg.contains("job 5 always dies"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn flaky_job_succeeds_on_retry() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let c = campaign(2);
        let first = AtomicU32::new(0);
        let cfg = ExecutorConfig::serial().with_max_attempts(2);
        let r = run_campaign(&c, &cfg, |job| {
            if job.index == 0 && first.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("transient");
            }
            toy_runner(job)
        });
        std::panic::set_hook(prev);

        assert_eq!(r.failed(), 0);
        assert_eq!(r.records[0].outcome.attempts(), 2);
        assert_eq!(r.records[1].outcome.attempts(), 1);
    }

    #[test]
    fn reports_identical_across_worker_counts() {
        let c = campaign(32);
        let base = run_campaign(&c, &ExecutorConfig::serial(), toy_runner);
        for workers in [2usize, 8] {
            let r = run_campaign(
                &c,
                &ExecutorConfig::default().with_workers(workers),
                toy_runner,
            );
            assert_eq!(base.records, r.records);
            assert_eq!(base.to_jsonl(), r.to_jsonl());
        }
    }

    #[test]
    fn retry_backoff_is_deterministic_and_exponential() {
        // Same (seed, attempt) → same sleep; growth dominated by the
        // doubling base; jitter bounded by half the base.
        for seed in [0u64, 31, u64::MAX] {
            for attempt in 1..=5u32 {
                let a = retry_backoff_ms(10, seed, attempt);
                let b = retry_backoff_ms(10, seed, attempt);
                assert_eq!(a, b, "backoff must not depend on ambient state");
                let expo = 10 * (1 << (attempt - 1));
                assert!((expo..=expo + expo / 2).contains(&a));
            }
        }
        // Different jobs spread out (not all identical).
        let spread: std::collections::BTreeSet<u64> =
            (0..16u64).map(|s| retry_backoff_ms(100, s, 1)).collect();
        assert!(spread.len() > 1, "jitter never varies");
        assert_eq!(retry_backoff_ms(0, 7, 3), 0, "zero base disables backoff");
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempts_rejected() {
        let cfg = ExecutorConfig::serial().with_max_attempts(0);
        let _ = run_campaign(&campaign(1), &cfg, toy_runner);
    }

    #[test]
    fn pad_progress_covers_prior_longer_line() {
        let mut width = 0;
        let long = pad_progress(&mut width, "[c] 1/10 done, 0 failed, ETA 123s");
        assert_eq!(long.len(), 33);
        // The shorter final line is padded to overwrite the ETA tail.
        let short = pad_progress(&mut width, "[c] 10/10 done, 0 failed");
        assert_eq!(short.len(), long.len());
        assert!(short.ends_with("         "));
        // A longer line later needs no padding and raises the bar.
        let longer = pad_progress(&mut width, &"x".repeat(40));
        assert_eq!(longer.len(), 40);
        assert_eq!(width, 40);
    }

    #[test]
    fn metrics_never_change_report_bytes() {
        let c = campaign(8);
        let bare = run_campaign(&c, &ExecutorConfig::serial(), toy_runner);
        let registry = Registry::new();
        let m = ExecMetrics::register(&registry);
        let cfg = ExecutorConfig::serial().with_metrics(m.clone());
        let metered = run_campaign(&c, &cfg, toy_runner);
        // Metrics watch, never steer: report bytes are unchanged.
        assert_eq!(bare.to_jsonl(), metered.to_jsonl());
        assert_eq!(m.units_completed.get(), 8);
        assert_eq!(m.units_failed.get(), 0);
        assert!(m.busy_seconds.get() > 0.0);
        assert!(m.units_per_second.get() > 0.0);
        dramctrl_obs::metrics::validate_exposition(&registry.render_prometheus()).unwrap();
    }

    #[test]
    fn metrics_count_retries_and_failures() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let registry = Registry::new();
        let m = ExecMetrics::register(&registry);
        let cfg = ExecutorConfig::serial()
            .with_max_attempts(2)
            .with_retry_backoff_ms(0)
            .with_metrics(m.clone());
        let first = AtomicU32::new(0);
        let r = run_campaign(&campaign(8), &cfg, |job| {
            match job.index {
                // One transient panic: costs a retry, then completes.
                3 if first.fetch_add(1, Ordering::Relaxed) == 0 => panic!("transient"),
                // One hard failure: burns the whole attempt budget.
                5 => panic!("always"),
                _ => {}
            }
            toy_runner(job)
        });
        std::panic::set_hook(prev);

        assert_eq!(r.failed(), 1);
        assert_eq!(m.units_completed.get(), 7);
        assert_eq!(m.units_failed.get(), 1);
        // Job 3 used one extra attempt, job 5 used one beyond its first.
        assert_eq!(m.retries.get(), 2);
    }

    #[test]
    fn journaled_run_observes_batches_and_commit_latency() {
        let dir = std::env::temp_dir().join(format!("dramctrl-execm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let c = campaign(12);
        let registry = Registry::new();
        let m = ExecMetrics::register(&registry);
        let cfg = ExecutorConfig::serial().with_metrics(m.clone());
        let mut journal = CampaignJournal::create(dir.join("j.jsonl"), &c).unwrap();
        let r = run_campaign_journaled(&c, &cfg, &mut journal, toy_runner);
        assert_eq!(r.records.len(), 12);
        assert_eq!(m.batch_records.count(), m.commit_seconds.count());
        assert!(m.batch_records.count() >= 1);
        assert!(
            (m.batch_records.sum() - 12.0).abs() < 1e-9,
            "every record batched once"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
