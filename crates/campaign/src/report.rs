//! Campaign results: per-job metrics aggregated into a serializable
//! report.
//!
//! The JSON-lines rendering is deliberately deterministic: metric keys
//! are stored sorted (`BTreeMap`), the line order is the job expansion
//! order, and host-dependent values (wall-clock time, worker count) are
//! kept out of [`CampaignReport::to_jsonl`]. The same campaign seed
//! therefore produces byte-identical JSONL at any worker count.

use crate::exec::JobOutcome;
use crate::spec::JobSpec;
use dramctrl_stats::Table;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Named scalar results of one job, with stable (sorted) key order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobMetrics {
    values: BTreeMap<String, f64>,
}

impl JobMetrics {
    /// Creates an empty metrics set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Iterates metrics in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no metrics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// One job plus its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job that ran.
    pub job: JobSpec,
    /// What happened.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Renders this record as its JSON-lines object, without a trailing
    /// newline — the exact bytes [`CampaignReport::to_jsonl`] and the
    /// campaign journal write for it, so consumers (the simulation
    /// service streams these to clients) deliver results byte-identical
    /// to a local sweep's report.
    #[must_use]
    pub fn render(&self, campaign_name: &str) -> String {
        render_record(campaign_name, self)
    }
}

/// The aggregated result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Campaign master seed.
    pub seed: u64,
    /// Worker threads actually used (host-dependent; excluded from
    /// [`to_jsonl`](Self::to_jsonl)).
    pub workers: usize,
    /// Wall-clock seconds for the whole run (host-dependent; excluded
    /// from [`to_jsonl`](Self::to_jsonl)).
    pub wall_secs: f64,
    /// Per-job records in expansion order.
    pub records: Vec<JobRecord>,
}

impl CampaignReport {
    /// Number of jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| !r.outcome.is_failed())
            .count()
    }

    /// Number of jobs that failed (panicked on every attempt).
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Jobs completed or failed per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.records.len() as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// The record for job `index`, if it exists.
    pub fn record(&self, index: usize) -> Option<&JobRecord> {
        self.records.get(index)
    }

    /// Finds the first completed record matching `pred`, returning its
    /// spec and metrics.
    pub fn find(&self, mut pred: impl FnMut(&JobSpec) -> bool) -> Option<(&JobSpec, &JobMetrics)> {
        self.records.iter().find_map(|r| match &r.outcome {
            JobOutcome::Completed { metrics, .. } if pred(&r.job) => Some((&r.job, metrics)),
            _ => None,
        })
    }

    /// Renders the report as JSON lines, one object per job in expansion
    /// order.
    ///
    /// Only seed-determined data is included — no wall-clock time, no
    /// worker count — so the output is byte-identical for the same
    /// campaign seed regardless of parallelism.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&render_record(&self.name, r));
            out.push('\n');
        }
        out
    }

    /// Renders a markdown [`Table`] with one row per job: the swept axes
    /// plus the named metric columns (`-` for metrics a job did not
    /// record and for failed jobs).
    pub fn table(&self, metric_cols: &[&str]) -> Table {
        let mut header = vec![
            "job", "device", "model", "policy", "sched", "mapping", "ch", "traffic", "read%",
            "reqs", "outcome",
        ];
        header.extend(metric_cols);
        let mut t = Table::new(header);
        for r in &self.records {
            let j = &r.job;
            let mut row = vec![
                j.index.to_string(),
                j.device.clone(),
                j.model.to_string(),
                j.policy.to_string(),
                j.sched.to_string(),
                j.mapping.to_string(),
                j.channels.to_string(),
                j.traffic.to_string(),
                j.read_pct.to_string(),
                j.requests.to_string(),
            ];
            match &r.outcome {
                JobOutcome::Completed { metrics, .. } => {
                    row.push("ok".to_owned());
                    for &col in metric_cols {
                        row.push(
                            metrics
                                .get(col)
                                .map_or_else(|| "-".to_owned(), |v| format!("{v:.3}")),
                        );
                    }
                }
                JobOutcome::Failed { .. } => {
                    row.push("failed".to_owned());
                    for _ in metric_cols {
                        row.push("-".to_owned());
                    }
                }
            }
            t.row(row);
        }
        t
    }

    /// A one-line human summary including the host-dependent timing.
    pub fn summary(&self) -> String {
        format!(
            "campaign '{}': {} jobs ({} ok, {} failed) in {:.2}s wall, {:.1} jobs/s, {} workers",
            self.name,
            self.records.len(),
            self.completed(),
            self.failed(),
            self.wall_secs,
            self.jobs_per_sec(),
            self.workers
        )
    }
}

/// Renders one [`JobRecord`] as its JSON-lines object, without a trailing
/// newline. This is the single renderer behind both
/// [`CampaignReport::to_jsonl`] and the durable campaign journal, so a
/// journaled line is byte-identical to the report line the same record
/// produces — resuming a crashed sweep can merge journaled and freshly
/// computed records into one byte-identical report.
pub(crate) fn render_record(campaign_name: &str, r: &JobRecord) -> String {
    render_parts(campaign_name, &r.job, &r.outcome)
}

/// [`render_record`] over borrowed parts: the journal's batched commit
/// path renders straight from the executor's job table and outcome
/// channel without cloning either into a [`JobRecord`].
pub(crate) fn render_parts(campaign_name: &str, j: &JobSpec, outcome: &JobOutcome) -> String {
    let mut out = String::new();
    write!(
        out,
        "{{\"campaign\":{},\"job\":{},\"seed\":{},\"device\":{},\"model\":{},\
         \"policy\":{},\"sched\":{},\"mapping\":{},\"channels\":{},\"traffic\":{},\
         \"read_pct\":{},\"requests\":{},\"error_rate\":{}",
        json_str(campaign_name),
        j.index,
        j.seed,
        json_str(&j.device),
        json_str(&j.model.to_string()),
        json_str(&j.policy.to_string()),
        json_str(&j.sched.to_string()),
        json_str(&j.mapping.to_string()),
        j.channels,
        json_str(&j.traffic.to_string()),
        j.read_pct,
        j.requests,
        json_f64(j.error_rate),
    )
    .expect("writing to String cannot fail");
    match outcome {
        JobOutcome::Completed { metrics, attempts } => {
            write!(
                out,
                ",\"outcome\":\"ok\",\"attempts\":{attempts},\"metrics\":{{"
            )
            .unwrap();
            for (i, (k, v)) in metrics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{}:{}", json_str(k), json_f64(v)).unwrap();
            }
            out.push_str("}}");
        }
        JobOutcome::Failed {
            panic_msg,
            attempts,
        } => {
            write!(
                out,
                ",\"outcome\":\"failed\",\"attempts\":{attempts},\"panic_msg\":{}}}",
                json_str(panic_msg)
            )
            .unwrap();
        }
    }
    out
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number for an f64: shortest round-trip form; non-finite values
/// (not representable in JSON) become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Campaign;

    fn toy_report() -> CampaignReport {
        let jobs = Campaign::new("toy", 9).read_pcts([0, 100]).expand();
        let records = jobs
            .into_iter()
            .map(|job| {
                let outcome = if job.index == 1 {
                    JobOutcome::Failed {
                        panic_msg: "boom \"quoted\"\nline2".to_owned(),
                        attempts: 2,
                    }
                } else {
                    JobOutcome::Completed {
                        metrics: JobMetrics::new()
                            .with("bus_util", 0.5)
                            .with("avg_read_lat_ns", 60.25),
                        attempts: 1,
                    }
                };
                JobRecord { job, outcome }
            })
            .collect();
        CampaignReport {
            name: "toy".to_owned(),
            seed: 9,
            workers: 4,
            wall_secs: 1.5,
            records,
        }
    }

    #[test]
    fn jsonl_is_deterministic_and_excludes_host_state() {
        let r = toy_report();
        let jsonl = r.to_jsonl();
        assert_eq!(jsonl, r.to_jsonl());
        assert_eq!(jsonl.lines().count(), 2);
        // Host-dependent fields stay out.
        assert!(!jsonl.contains("wall"));
        assert!(!jsonl.contains("workers"));
        // Worker count must not leak into the lines.
        let mut other = toy_report();
        other.workers = 1;
        other.wall_secs = 99.0;
        assert_eq!(jsonl, other.to_jsonl());
    }

    #[test]
    fn jsonl_escapes_panic_messages() {
        let jsonl = toy_report().to_jsonl();
        let failed_line = jsonl.lines().nth(1).unwrap();
        assert!(failed_line.contains("\"outcome\":\"failed\""));
        assert!(failed_line.contains("boom \\\"quoted\\\"\\nline2"));
        assert!(failed_line.contains("\"attempts\":2"));
    }

    #[test]
    fn counters_and_lookup() {
        let r = toy_report();
        assert_eq!(r.completed(), 1);
        assert_eq!(r.failed(), 1);
        let (job, metrics) = r.find(|j| j.read_pct == 0).unwrap();
        assert_eq!(job.index, 0);
        assert_eq!(metrics.get("bus_util"), Some(0.5));
        assert!(r.find(|j| j.read_pct == 100).is_none(), "failed job");
    }

    #[test]
    fn table_marks_failures() {
        let t = toy_report().table(&["bus_util", "missing"]);
        let s = t.render();
        assert!(s.contains("ok"));
        assert!(s.contains("failed"));
        assert!(s.contains("0.500"));
        assert!(s.contains('-'));
    }

    #[test]
    fn summary_mentions_throughput() {
        let s = toy_report().summary();
        assert!(s.contains("2 jobs"));
        assert!(s.contains("1 failed"));
        assert!(s.contains("4 workers"));
    }

    #[test]
    fn json_helpers() {
        assert_eq!(json_str("a\"b\\c\u{1}"), "\"a\\\"b\\\\c\\u0001\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
