//! Declarative campaign specifications.
//!
//! A [`Campaign`] names a set of axes (device, model, page policy,
//! scheduler, address mapping, channel count, traffic pattern, read
//! percentage, request count); [`Campaign::expand`] takes the Cartesian
//! product and yields one [`JobSpec`] per point, each with a
//! deterministic seed derived from the campaign seed and the job index.

use dramctrl::{PagePolicy, SchedPolicy};
use dramctrl_kernel::rng::splitmix64;
use dramctrl_mem::AddrMapping;
use std::fmt;

/// Which controller model a job simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Model {
    /// The event-based controller (`dramctrl::DramCtrl`).
    #[default]
    Event,
    /// The cycle-based baseline (`dramctrl_cycle::CycleCtrl`).
    Cycle,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Model::Event => "event",
            Model::Cycle => "cycle",
        })
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(Model::Event),
            "cycle" => Ok(Model::Cycle),
            other => Err(format!("unknown model '{other}' (event|cycle)")),
        }
    }
}

/// The synthetic traffic driven at the controller in one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Linearly incrementing addresses over `range` bytes in `block`-byte
    /// requests.
    Linear {
        /// Address range in bytes.
        range: u64,
        /// Request size in bytes.
        block: u32,
    },
    /// Uniformly random addresses over `range` bytes in `block`-byte
    /// requests.
    Random {
        /// Address range in bytes.
        range: u64,
        /// Request size in bytes.
        block: u32,
    },
    /// The DRAM-aware generator: sequential runs of `stride` bursts
    /// interleaved over `banks` banks (the paper's bandwidth sweeps).
    DramAware {
        /// Sequential stride in bursts.
        stride: u64,
        /// Number of banks targeted.
        banks: u32,
    },
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficPattern::Linear { range, block } => {
                write!(f, "linear(range={range},block={block})")
            }
            TrafficPattern::Random { range, block } => {
                write!(f, "random(range={range},block={block})")
            }
            TrafficPattern::DramAware { stride, banks } => {
                write!(f, "dram-aware(stride={stride},banks={banks})")
            }
        }
    }
}

impl std::str::FromStr for TrafficPattern {
    type Err = String;

    /// Parses the exact form [`Display`](fmt::Display) renders, e.g.
    /// `linear(range=268435456,block=64)` — so patterns round-trip through
    /// reports, journals and the service protocol.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = s
            .split_once('(')
            .ok_or_else(|| format!("bad traffic pattern {s:?}"))?;
        let body = rest
            .strip_suffix(')')
            .ok_or_else(|| format!("bad traffic pattern {s:?}"))?;
        let field = |key: &str| -> Result<u64, String> {
            body.split(',')
                .find_map(|kv| kv.strip_prefix(key)?.strip_prefix('='))
                .ok_or_else(|| format!("traffic pattern {s:?} is missing '{key}='"))?
                .parse()
                .map_err(|_| format!("bad '{key}' value in {s:?}"))
        };
        match kind {
            "linear" => Ok(TrafficPattern::Linear {
                range: field("range")?,
                block: field("block")? as u32,
            }),
            "random" => Ok(TrafficPattern::Random {
                range: field("range")?,
                block: field("block")? as u32,
            }),
            "dram-aware" => Ok(TrafficPattern::DramAware {
                stride: field("stride")?,
                banks: field("banks")? as u32,
            }),
            other => Err(format!(
                "unknown traffic pattern kind '{other}' (linear, random, dram-aware)"
            )),
        }
    }
}

/// One fully specified simulation: a single point of a campaign's
/// Cartesian product.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the campaign's expansion order (stable across runs).
    pub index: usize,
    /// Device preset name (`dramctrl_mem::presets`, e.g.
    /// "DDR3-1333-x64").
    pub device: String,
    /// Controller model.
    pub model: Model,
    /// Row-buffer management policy.
    pub policy: PagePolicy,
    /// Request scheduling policy.
    pub sched: SchedPolicy,
    /// Address mapping.
    pub mapping: AddrMapping,
    /// Number of memory channels (1 = single controller, >1 = crossbar).
    pub channels: u32,
    /// Traffic pattern.
    pub traffic: TrafficPattern,
    /// Percentage of reads in the traffic mix (0–100).
    pub read_pct: u8,
    /// Number of requests to inject.
    pub requests: u64,
    /// RAS error rate (faults per gigabit-hour of simulated time); `0.0`
    /// runs without a fault model.
    pub error_rate: f64,
    /// Deterministic per-job seed derived from the campaign seed and
    /// `index`.
    pub seed: u64,
}

impl JobSpec {
    /// A compact human-readable label identifying this job.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}/{}/{}/ch{}/{}/r{}/n{}",
            self.device,
            self.model,
            self.policy,
            self.sched,
            self.mapping,
            self.channels,
            self.traffic,
            self.read_pct,
            self.requests
        );
        if self.error_rate > 0.0 {
            label.push_str(&format!("/e{}", self.error_rate));
        }
        label
    }
}

/// Derives the seed for job `index` of a campaign seeded with `campaign_seed`.
///
/// Uses a SplitMix64 finalisation so consecutive job indices get
/// decorrelated seeds, and the derivation depends only on
/// `(campaign_seed, index)` — never on scheduling order or worker count.
pub fn job_seed(campaign_seed: u64, index: usize) -> u64 {
    let mut state = campaign_seed.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// A declarative parameter sweep: named axes whose Cartesian product
/// expands into [`JobSpec`]s.
///
/// Every axis defaults to a single sensible value, so a campaign only
/// names the axes it actually sweeps:
///
/// ```
/// use dramctrl::PagePolicy;
/// use dramctrl_campaign::Campaign;
///
/// let jobs = Campaign::new("policy-sweep", 42)
///     .policies([PagePolicy::Open, PagePolicy::Closed])
///     .read_pcts([0, 50, 100])
///     .expand();
/// assert_eq!(jobs.len(), 6);
/// // Seeds depend only on (campaign seed, index).
/// assert_eq!(jobs[3].seed, dramctrl_campaign::job_seed(42, 3));
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (used in reports).
    pub name: String,
    /// Master seed; per-job seeds are derived from it.
    pub seed: u64,
    /// Device preset names.
    pub devices: Vec<String>,
    /// Controller models.
    pub models: Vec<Model>,
    /// Page policies.
    pub policies: Vec<PagePolicy>,
    /// Scheduling policies.
    pub scheds: Vec<SchedPolicy>,
    /// Address mappings.
    pub mappings: Vec<AddrMapping>,
    /// Channel counts.
    pub channels: Vec<u32>,
    /// Traffic patterns.
    pub traffic: Vec<TrafficPattern>,
    /// Read percentages.
    pub read_pcts: Vec<u8>,
    /// Request counts.
    pub request_counts: Vec<u64>,
    /// RAS error rates (faults per gigabit-hour); `0.0` means no fault
    /// model.
    pub error_rates: Vec<f64>,
}

impl Campaign {
    /// Creates a campaign with single-valued default axes: DDR3-1333-x64,
    /// event model, open page, FR-FCFS, RoRaBaCoCh, 1 channel, linear
    /// traffic over 256 MiB in 64-byte blocks, 100% reads, 10 000
    /// requests.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            devices: vec!["DDR3-1333-x64".to_owned()],
            models: vec![Model::Event],
            policies: vec![PagePolicy::Open],
            scheds: vec![SchedPolicy::FrFcfs],
            mappings: vec![AddrMapping::RoRaBaCoCh],
            channels: vec![1],
            traffic: vec![TrafficPattern::Linear {
                range: 256 << 20,
                block: 64,
            }],
            read_pcts: vec![100],
            request_counts: vec![10_000],
            error_rates: vec![0.0],
        }
    }

    /// Replaces the device axis.
    pub fn devices<S: Into<String>>(mut self, axis: impl IntoIterator<Item = S>) -> Self {
        self.devices = axis.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the model axis.
    pub fn models(mut self, axis: impl IntoIterator<Item = Model>) -> Self {
        self.models = axis.into_iter().collect();
        self
    }

    /// Replaces the page-policy axis.
    pub fn policies(mut self, axis: impl IntoIterator<Item = PagePolicy>) -> Self {
        self.policies = axis.into_iter().collect();
        self
    }

    /// Replaces the scheduler axis.
    pub fn scheds(mut self, axis: impl IntoIterator<Item = SchedPolicy>) -> Self {
        self.scheds = axis.into_iter().collect();
        self
    }

    /// Replaces the address-mapping axis.
    pub fn mappings(mut self, axis: impl IntoIterator<Item = AddrMapping>) -> Self {
        self.mappings = axis.into_iter().collect();
        self
    }

    /// Replaces the channel-count axis.
    pub fn channels(mut self, axis: impl IntoIterator<Item = u32>) -> Self {
        self.channels = axis.into_iter().collect();
        self
    }

    /// Replaces the traffic-pattern axis.
    pub fn traffic(mut self, axis: impl IntoIterator<Item = TrafficPattern>) -> Self {
        self.traffic = axis.into_iter().collect();
        self
    }

    /// Replaces the read-percentage axis.
    pub fn read_pcts(mut self, axis: impl IntoIterator<Item = u8>) -> Self {
        self.read_pcts = axis.into_iter().collect();
        self
    }

    /// Replaces the request-count axis.
    pub fn requests(mut self, axis: impl IntoIterator<Item = u64>) -> Self {
        self.request_counts = axis.into_iter().collect();
        self
    }

    /// Replaces the error-rate axis (faults per gigabit-hour; `0.0` runs
    /// fault-free).
    pub fn error_rates(mut self, axis: impl IntoIterator<Item = f64>) -> Self {
        self.error_rates = axis.into_iter().collect();
        self
    }

    /// Number of jobs the campaign expands into.
    pub fn len(&self) -> usize {
        self.devices.len()
            * self.models.len()
            * self.policies.len()
            * self.scheds.len()
            * self.mappings.len()
            * self.channels.len()
            * self.traffic.len()
            * self.read_pcts.len()
            * self.request_counts.len()
            * self.error_rates.len()
    }

    /// Whether the Cartesian product is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the Cartesian product into jobs, in a stable nesting
    /// order (devices outermost, request counts innermost).
    ///
    /// # Panics
    /// Panics if any axis is empty — an empty axis silently annihilating
    /// the whole product is never what a sweep author meant.
    pub fn expand(&self) -> Vec<JobSpec> {
        for (axis, len) in [
            ("devices", self.devices.len()),
            ("models", self.models.len()),
            ("policies", self.policies.len()),
            ("scheds", self.scheds.len()),
            ("mappings", self.mappings.len()),
            ("channels", self.channels.len()),
            ("traffic", self.traffic.len()),
            ("read_pcts", self.read_pcts.len()),
            ("request_counts", self.request_counts.len()),
            ("error_rates", self.error_rates.len()),
        ] {
            assert!(len > 0, "campaign axis '{axis}' is empty");
        }
        let mut jobs = Vec::with_capacity(self.len());
        for device in &self.devices {
            for &model in &self.models {
                for &policy in &self.policies {
                    for &sched in &self.scheds {
                        for &mapping in &self.mappings {
                            for &channels in &self.channels {
                                for &traffic in &self.traffic {
                                    for &read_pct in &self.read_pcts {
                                        for &requests in &self.request_counts {
                                            for &error_rate in &self.error_rates {
                                                let index = jobs.len();
                                                jobs.push(JobSpec {
                                                    index,
                                                    device: device.clone(),
                                                    model,
                                                    policy,
                                                    sched,
                                                    mapping,
                                                    channels,
                                                    traffic,
                                                    read_pct,
                                                    requests,
                                                    error_rate,
                                                    seed: job_seed(self.seed, index),
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_cartesian_and_stable() {
        let c = Campaign::new("t", 1)
            .policies([PagePolicy::Open, PagePolicy::Closed])
            .read_pcts([0, 50, 100])
            .requests([100, 200]);
        assert_eq!(c.len(), 12);
        let jobs = c.expand();
        assert_eq!(jobs.len(), 12);
        // Innermost axis varies fastest.
        assert_eq!(jobs[0].requests, 100);
        assert_eq!(jobs[1].requests, 200);
        assert_eq!(jobs[0].read_pct, 0);
        assert_eq!(jobs[2].read_pct, 50);
        // Indices are positions.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
        // Expansion is deterministic.
        assert_eq!(c.expand(), jobs);
    }

    #[test]
    fn seeds_depend_only_on_campaign_seed_and_index() {
        let a = Campaign::new("a", 7).read_pcts([0, 100]).expand();
        let b = Campaign::new("b", 7)
            .policies([PagePolicy::Closed])
            .read_pcts([0, 100])
            .expand();
        // Different axes, same seed + index: same job seeds.
        assert_eq!(a[1].seed, b[1].seed);
        assert_eq!(a[1].seed, job_seed(7, 1));
        // Different campaign seed: different job seeds.
        assert_ne!(a[0].seed, Campaign::new("a", 8).expand()[0].seed);
        // Consecutive indices decorrelate.
        assert_ne!(a[0].seed, a[1].seed);
    }

    #[test]
    #[should_panic(expected = "axis 'policies' is empty")]
    fn empty_axis_panics() {
        let _ = Campaign::new("t", 1).policies([]).expand();
    }

    #[test]
    fn labels_are_readable() {
        let jobs = Campaign::new("t", 1).expand();
        let l = jobs[0].label();
        assert!(l.contains("DDR3-1333-x64"));
        assert!(l.contains("event"));
        assert!(l.contains("open"));
        assert!(l.contains("linear"));
    }

    #[test]
    fn error_rate_axis_expands_innermost_and_labels() {
        let c = Campaign::new("ras", 5)
            .read_pcts([0, 100])
            .error_rates([0.0, 1e10, 1e12]);
        assert_eq!(c.len(), 6);
        let jobs = c.expand();
        // Innermost: error rate varies fastest.
        assert_eq!(jobs[0].error_rate, 0.0);
        assert_eq!(jobs[1].error_rate, 1e10);
        assert_eq!(jobs[2].error_rate, 1e12);
        assert_eq!(jobs[3].read_pct, 100);
        // The default single-valued axis leaves indices and seeds exactly
        // as they were before the axis existed.
        let plain = Campaign::new("ras", 5).read_pcts([0, 100]).expand();
        assert_eq!(plain.len(), 2);
        assert!(plain.iter().all(|j| j.error_rate == 0.0));
        // Fault-free labels are unchanged; faulty ones name the rate.
        assert_eq!(jobs[0].label(), plain[0].label());
        assert!(jobs[1].label().ends_with("/e10000000000"));
    }

    #[test]
    fn model_round_trips_from_str() {
        assert_eq!("event".parse::<Model>().unwrap(), Model::Event);
        assert_eq!("cycle".parse::<Model>().unwrap(), Model::Cycle);
        assert!("quantum".parse::<Model>().is_err());
    }
}
