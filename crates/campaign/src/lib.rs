//! A parallel, fault-isolated simulation-campaign engine for the
//! `dramctrl` simulators.
//!
//! Architecture-exploration studies (the point of the source paper) run
//! the same controller models over large parameter grids. This crate
//! turns those grids into first-class objects:
//!
//! - [`Campaign`] declares named axes (device, model, page policy,
//!   scheduler, mapping, channels, traffic, read mix, request count)
//!   whose Cartesian product expands into [`JobSpec`]s, each with a
//!   deterministic seed derived from the campaign seed and job index.
//! - [`run_campaign`] executes the jobs on a worker pool
//!   ([`ExecutorConfig`] controls width and retries). Panics inside a
//!   job are caught, retried up to a bound, and recorded as
//!   [`JobOutcome::Failed`] — one diverging configuration never takes
//!   down a thousand-job sweep.
//! - [`CampaignReport`] aggregates per-job [`JobMetrics`] and renders
//!   deterministic JSON lines ([`CampaignReport::to_jsonl`]) and
//!   markdown tables ([`CampaignReport::table`]).
//! - [`CampaignJournal`] is a durable write-ahead journal of completed
//!   jobs: [`run_campaign_journaled`] fsyncs every record before counting
//!   the job as done, so a killed sweep resumes exactly where it stopped —
//!   skipping journaled jobs and merging their outcomes into a report
//!   byte-identical to an uninterrupted run's.
//!
//! The engine is generic over the runner (`Fn(&JobSpec) -> JobMetrics`),
//! so it has no dependency on the controller crates beyond the axis
//! types; the canonical runner wiring specs to real controllers lives in
//! `dramctrl-bench` (`run_job`).
//!
//! # Determinism
//!
//! The same campaign seed produces byte-identical
//! [`CampaignReport::to_jsonl`] output at *any* worker count: per-job
//! seeds depend only on `(campaign seed, job index)`, results are keyed
//! by job index rather than completion order, and host-dependent values
//! (wall-clock, worker count) are excluded from the JSONL.
//!
//! # Example
//!
//! ```
//! use dramctrl::PagePolicy;
//! use dramctrl_campaign::{run_campaign, Campaign, ExecutorConfig, JobMetrics};
//!
//! let campaign = Campaign::new("demo", 42)
//!     .policies([PagePolicy::Open, PagePolicy::Closed])
//!     .read_pcts([0, 50, 100]);
//! let report = run_campaign(&campaign, &ExecutorConfig::default(), |job| {
//!     // A real runner simulates `job`; see dramctrl-bench::run_job.
//!     JobMetrics::new().with("seed_low", (job.seed & 0xFF) as f64)
//! });
//! assert_eq!(report.completed(), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod journal;
mod report;
mod spec;

pub use exec::{
    run_campaign, run_campaign_journaled, run_campaign_shard, ExecMetrics, ExecutorConfig,
    JobOutcome, Progress,
};
pub use journal::{
    campaign_hash, merge_journals, parse_record_line, CampaignJournal, JournalError,
    JOURNAL_VERSION,
};
pub use report::{CampaignReport, JobMetrics, JobRecord};
pub use spec::{job_seed, Campaign, JobSpec, Model, TrafficPattern};
