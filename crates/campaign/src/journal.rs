//! The durable campaign journal: a write-ahead record of completed jobs
//! that makes a sweep resumable after a crash or kill.
//!
//! The journal is a JSON-lines file. The first line is a header naming
//! the campaign and carrying a hash of its full specification; every
//! further line is one completed job's record, byte-identical to the
//! line [`CampaignReport::to_jsonl`](crate::CampaignReport::to_jsonl)
//! renders for the same record (both go through one renderer). Appends
//! are fsync'd before they return ([`DurableAppender`]), and the append
//! is the executor's *single commit point*: a job only counts as done
//! once its line is on disk. A process dying between a job's artifact
//! writes and its journal append simply re-runs that job on resume —
//! artifacts are overwritten atomically, the journal never double-counts.
//!
//! Resuming tolerates a torn tail (a crash mid-append leaves a partial
//! last line): the partial line is dropped and the file truncated back to
//! the last complete record. A journal written for a *different* campaign
//! specification is rejected loudly via the header hash.

use crate::exec::JobOutcome;
use crate::report::{render_parts, render_record, JobMetrics, JobRecord};
use crate::spec::{Campaign, JobSpec};
use dramctrl_kernel::fsio::{self, DurableAppender};
use dramctrl_kernel::snap::fingerprint;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Journal format version; bumped on any header or record layout change.
pub const JOURNAL_VERSION: u32 = 1;

/// Hash of a campaign's complete specification (name, seed and every
/// axis). Two campaigns expand to the same jobs in the same order if and
/// only if their specifications match, so the hash guards a journal
/// against being resumed under a different sweep.
#[must_use]
pub fn campaign_hash(campaign: &Campaign) -> u64 {
    fingerprint(format!("{campaign:?}").as_bytes())
}

/// Why a journal could not be opened for resuming.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with a journal header.
    NotAJournal,
    /// The journal was written by a different format version.
    Version(u32),
    /// The journal belongs to a different campaign specification.
    SpecMismatch {
        /// Hash of the campaign being resumed.
        expected: u64,
        /// Hash found in the journal header.
        found: u64,
    },
    /// A record line (other than a torn tail) failed to parse.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        why: String,
    },
    /// A merge was asked to produce a complete report but some job
    /// indices appear in none of the journals (a shard has not finished,
    /// or a shard journal was left out of the merge).
    Incomplete {
        /// How many job indices have no record.
        missing: usize,
        /// The lowest missing index, as a concrete pointer.
        first_missing: usize,
        /// Jobs the campaign expands into.
        total: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::NotAJournal => write!(f, "not a dramctrl campaign journal"),
            JournalError::Version(v) => write!(
                f,
                "journal format version {v} is not the supported version {JOURNAL_VERSION}"
            ),
            JournalError::SpecMismatch { expected, found } => write!(
                f,
                "journal belongs to a different campaign (spec hash {found:#018x}, \
                 this sweep is {expected:#018x}); re-run the original sweep command \
                 line or start a fresh journal"
            ),
            JournalError::Corrupt { line, why } => {
                write!(f, "journal line {line} is corrupt: {why}")
            }
            JournalError::Incomplete {
                missing,
                first_missing,
                total,
            } => write!(
                f,
                "merged journals cover only {}/{total} jobs ({missing} missing, \
                 first missing index {first_missing}); run the remaining shards \
                 or include their journals in the merge",
                total - missing
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A write-ahead journal of completed campaign jobs.
///
/// Create one with [`create`](Self::create) for a fresh sweep or
/// [`resume`](Self::resume) to pick up a crashed one, then hand it to
/// [`run_campaign_journaled`](crate::run_campaign_journaled).
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    appender: DurableAppender,
    campaign_name: String,
    completed: BTreeMap<usize, JobOutcome>,
    total: usize,
    dropped_torn_tail: bool,
}

impl CampaignJournal {
    /// Creates a fresh journal at `path` for `campaign`, writing the
    /// durable header line.
    ///
    /// # Errors
    /// Any I/O error from creating or syncing the file.
    pub fn create(path: impl Into<PathBuf>, campaign: &Campaign) -> Result<Self, JournalError> {
        let path = path.into();
        let mut appender = DurableAppender::create(&path)?;
        let header = format!(
            "{{\"journal\":\"dramctrl-campaign\",\"version\":{},\"name\":{},\
             \"spec_hash\":\"{:#018x}\",\"total\":{}}}",
            JOURNAL_VERSION,
            json_escape(&campaign.name),
            campaign_hash(campaign),
            campaign.len(),
        );
        appender.append_line(&header)?;
        Ok(Self {
            path,
            appender,
            campaign_name: campaign.name.clone(),
            completed: BTreeMap::new(),
            total: campaign.len(),
            dropped_torn_tail: false,
        })
    }

    /// Opens an existing journal at `path` and replays it.
    ///
    /// The header's spec hash must match `campaign`; completed job records
    /// are parsed back (keeping the *first* record for an index, should a
    /// duplicate ever appear) and a torn tail — a crash mid-append — is
    /// dropped, truncating the file back to the last complete record so
    /// new appends start on a clean line boundary.
    ///
    /// # Errors
    /// I/O errors, a missing or mismatching header, or a corrupt record
    /// line that is not the torn tail.
    pub fn resume(path: impl Into<PathBuf>, campaign: &Campaign) -> Result<Self, JournalError> {
        let path = path.into();
        let scan = scan_journal(&path, campaign)?;
        if scan.dropped_torn_tail {
            // Truncate the torn bytes so the next append starts a clean line.
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(scan.valid_len as u64)?;
            f.sync_data()?;
        }
        let appender = DurableAppender::append_to(&path)?;
        Ok(Self {
            path,
            appender,
            campaign_name: campaign.name.clone(),
            completed: scan.completed,
            total: scan.total,
            dropped_torn_tail: scan.dropped_torn_tail,
        })
    }

    /// Opens `path` in whatever state a crash left it: a missing file —
    /// or one whose header line never landed whole (the crash window
    /// between file creation and the header append) — is created fresh;
    /// anything with a durable header resumes normally.
    ///
    /// A header-less file can hold no records, so recreating it loses
    /// nothing. A file whose *complete* first line is not our header is
    /// still refused: that is someone else's data, not a crash artifact.
    ///
    /// # Errors
    /// The same errors as [`create`](Self::create) and
    /// [`resume`](Self::resume), minus the torn-header `NotAJournal`.
    pub fn recover(path: impl Into<PathBuf>, campaign: &Campaign) -> Result<Self, JournalError> {
        let path = path.into();
        if !path.exists() {
            return Self::create(path, campaign);
        }
        match Self::resume(&path, campaign) {
            Err(JournalError::NotAJournal) if !std::fs::read_to_string(&path)?.contains('\n') => {
                Self::create(path, campaign)
            }
            other => other,
        }
    }

    /// Reads a journal without opening it for appends and without
    /// modifying the file: validates the header against `campaign` and
    /// returns the journaled outcomes (keep-first, torn tail ignored).
    ///
    /// This is the read path for merging shard journals and for serving
    /// finished results — the journal may still be live in another
    /// process, so replay must not truncate.
    ///
    /// # Errors
    /// The same validation errors as [`resume`](Self::resume).
    pub fn replay(
        path: impl AsRef<Path>,
        campaign: &Campaign,
    ) -> Result<BTreeMap<usize, JobOutcome>, JournalError> {
        Ok(scan_journal(path.as_ref(), campaign)?.completed)
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Outcomes already durably journaled, keyed by job index.
    #[must_use]
    pub fn completed(&self) -> &BTreeMap<usize, JobOutcome> {
        &self.completed
    }

    /// Number of jobs the campaign expands into.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether [`resume`](Self::resume) dropped a torn (partially
    /// written) final line.
    #[must_use]
    pub fn dropped_torn_tail(&self) -> bool {
        self.dropped_torn_tail
    }

    /// Commits one finished job: appends its record line and fsyncs.
    ///
    /// This is the campaign's single commit point — when it returns
    /// `Ok(true)` the record is on disk and the job will be skipped by any
    /// future resume. Committing an index that is already journaled is a
    /// durable no-op (returns `Ok(false)`), so a record can never be
    /// appended twice.
    ///
    /// # Errors
    /// Any I/O error from appending or syncing; the record is then *not*
    /// committed and the job must be treated as not done.
    pub fn commit(&mut self, record: &JobRecord) -> io::Result<bool> {
        if self.completed.contains_key(&record.job.index) {
            return Ok(false);
        }
        let line = render_record(&self.campaign_name, record);
        self.appender.append_line(&line)?;
        self.completed
            .insert(record.job.index, record.outcome.clone());
        test_kill_hook();
        Ok(true)
    }

    /// Commits a batch of finished jobs with one fsync: every record's
    /// line is rendered from borrows (no [`JobRecord`] construction) and
    /// appended, then a single sync is the whole batch's commit point.
    /// Already-journaled indices are skipped (keep-first, as
    /// [`commit`](Self::commit)); the journal's bytes are exactly what the
    /// same records committed one-by-one would have written.
    ///
    /// With group commit enabled ([`set_group_commit`](Self::set_group_commit))
    /// the *window* supersedes per-batch syncing: the batch's lines are
    /// written immediately but only fsync'd when the window closes (or on
    /// [`sync`](Self::sync)). Both paths share the appender's single dirty
    /// flag, so there is no double buffering — one fsync always covers
    /// everything written since the last one.
    ///
    /// A process killed mid-batch (after some appends, before the sync)
    /// leaves complete record lines plus at most one torn tail —
    /// [`resume`](Self::resume) replays the prefix and re-runs the rest.
    ///
    /// Returns how many records were newly appended.
    ///
    /// # Errors
    /// Any I/O error from appending or syncing; the batch is then *not*
    /// committed (some lines may be on disk, which resume handles as
    /// above) and its jobs must be treated as not done.
    pub fn commit_batch<'a, I>(&mut self, records: I) -> io::Result<usize>
    where
        I: IntoIterator<Item = (&'a JobSpec, &'a JobOutcome)>,
    {
        let mut appended = 0;
        for (job, outcome) in records {
            if self.completed.contains_key(&job.index) {
                continue;
            }
            let line = render_parts(&self.campaign_name, job, outcome);
            self.appender.append_line_deferred(&line)?;
            self.completed.insert(job.index, outcome.clone());
            test_kill_hook();
            appended += 1;
        }
        if appended > 0 {
            self.appender.commit_batch()?;
        }
        Ok(appended)
    }

    /// Switches the journal to group commit: appends within `window` of
    /// the last fsync skip their own fsync and ride the next one (see
    /// [`DurableAppender::set_group_commit`]). `None` restores
    /// sync-every-append.
    ///
    /// Safe for the journal's crash contract: a record lost from an
    /// unsynced tail simply re-runs on resume, and keep-first dedup means
    /// the re-run's record is the one that counts.
    pub fn set_group_commit(&mut self, window: Option<std::time::Duration>) {
        self.appender.set_group_commit(window);
    }

    /// Forces any batched (group-commit) appends to disk now.
    ///
    /// # Errors
    /// Any I/O error from syncing.
    pub fn sync(&mut self) -> io::Result<()> {
        self.appender.sync()
    }
}

/// What a validating read of a journal file yields.
struct JournalScan {
    completed: BTreeMap<usize, JobOutcome>,
    total: usize,
    /// Bytes up to and including the last complete record line.
    valid_len: usize,
    dropped_torn_tail: bool,
}

/// Reads and validates a journal file against `campaign` without
/// modifying it: header checks, keep-first record replay, torn-tail
/// detection. Shared by [`CampaignJournal::resume`] (which then
/// truncates and reopens for append) and the read-only paths
/// ([`CampaignJournal::replay`], [`merge_journals`]).
fn scan_journal(path: &Path, campaign: &Campaign) -> Result<JournalScan, JournalError> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.split_inclusive('\n');

    let header = lines.next().ok_or(JournalError::NotAJournal)?;
    if !header.ends_with('\n') {
        // Even the header never made it to disk whole.
        return Err(JournalError::NotAJournal);
    }
    let (version, spec_hash, total) =
        parse_header(header.trim_end_matches('\n')).ok_or(JournalError::NotAJournal)?;
    if version != JOURNAL_VERSION {
        return Err(JournalError::Version(version));
    }
    let expected = campaign_hash(campaign);
    if spec_hash != expected {
        return Err(JournalError::SpecMismatch {
            expected,
            found: spec_hash,
        });
    }
    if total != campaign.len() {
        return Err(JournalError::Corrupt {
            line: 1,
            why: format!(
                "header total {} does not match the campaign's {} jobs",
                total,
                campaign.len()
            ),
        });
    }

    let mut completed = BTreeMap::new();
    let mut valid_len = header.len();
    let mut dropped_torn_tail = false;
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        if !line.ends_with('\n') {
            // Torn tail: the process died mid-append. Drop it.
            dropped_torn_tail = true;
            break;
        }
        let (index, outcome) = parse_record(line.trim_end_matches('\n'))
            .map_err(|why| JournalError::Corrupt { line: line_no, why })?;
        if index >= total {
            return Err(JournalError::Corrupt {
                line: line_no,
                why: format!("job index {index} is outside the campaign's {total} jobs"),
            });
        }
        // Keep-first: the earliest durable record for an index wins.
        completed.entry(index).or_insert(outcome);
        valid_len = valid_len.saturating_add(line.len());
    }
    Ok(JournalScan {
        completed,
        total,
        valid_len,
        dropped_torn_tail,
    })
}

/// Merges shard journals for one campaign into a complete
/// [`CampaignReport`](crate::CampaignReport).
///
/// Every journal is validated against `campaign` (header hash, version,
/// total) and replayed read-only; outcomes are unioned keep-first in
/// `paths` order, matching the single-journal dedup rule. The merged
/// report's [`to_jsonl`](crate::CampaignReport::to_jsonl) is
/// byte-identical to an unsharded run's, because records are keyed by
/// job index and each job's result depends only on its spec — never on
/// which shard ran it. Host-dependent fields (`workers`, `wall_secs`)
/// are zeroed: a merge is not a run.
///
/// # Errors
/// Any per-journal validation error, or [`JournalError::Incomplete`] if
/// the union does not cover every job index.
pub fn merge_journals(
    campaign: &Campaign,
    paths: &[impl AsRef<Path>],
) -> Result<crate::CampaignReport, JournalError> {
    let mut merged: BTreeMap<usize, JobOutcome> = BTreeMap::new();
    for path in paths {
        for (index, outcome) in scan_journal(path.as_ref(), campaign)?.completed {
            merged.entry(index).or_insert(outcome);
        }
    }
    let jobs = campaign.expand();
    let missing: Vec<usize> = (0..jobs.len())
        .filter(|i| !merged.contains_key(i))
        .collect();
    if let Some(&first_missing) = missing.first() {
        return Err(JournalError::Incomplete {
            missing: missing.len(),
            first_missing,
            total: jobs.len(),
        });
    }
    let records = jobs
        .into_iter()
        .map(|job| {
            let outcome = merged
                .remove(&job.index)
                .expect("missing indices were rejected above");
            JobRecord { job, outcome }
        })
        .collect();
    Ok(crate::CampaignReport {
        name: campaign.name.clone(),
        seed: campaign.seed,
        workers: 0,
        wall_secs: 0.0,
        records,
    })
}

/// Crash-injection hook for the recovery tests: when the environment
/// variable `DRAMCTRL_TEST_KILL_AFTER_APPENDS` is set to `N`, the process
/// dies immediately after the `N`-th durable journal append — after the
/// commit point, before anything else — simulating a kill at the worst
/// possible moment. The append-counting trigger predates the general
/// fault layer and is kept for its after-the-commit-point semantics; the
/// crash itself (exit code [`fsio::fault::CRASH_EXIT_CODE`]) is shared
/// with `DRAMCTRL_FAULT_PLAN`'s `crash` action, which covers the
/// before-the-op half of the space.
fn test_kill_hook() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;
    static LIMIT: OnceLock<Option<u64>> = OnceLock::new();
    static APPENDS: AtomicU64 = AtomicU64::new(0);
    let Some(limit) = *LIMIT.get_or_init(|| {
        std::env::var("DRAMCTRL_TEST_KILL_AFTER_APPENDS")
            .ok()
            .and_then(|v| v.parse().ok())
    }) else {
        return;
    };
    if APPENDS.fetch_add(1, Ordering::SeqCst) + 1 == limit {
        eprintln!("test kill hook: exiting after {limit} journal append(s)");
        fsio::fault::crash_now();
    }
}

/// Parses the header line, returning `(version, spec_hash, total)`.
fn parse_header(line: &str) -> Option<(u32, u64, usize)> {
    let mut c = Cursor::new(line);
    c.lit("{\"journal\":\"dramctrl-campaign\",\"version\":")
        .ok()?;
    let version = c.raw_num().ok()?.parse().ok()?;
    c.lit(",\"name\":").ok()?;
    let _name = c.string().ok()?;
    c.lit(",\"spec_hash\":\"").ok()?;
    let hex = c.until('"').ok()?;
    let spec_hash = u64::from_str_radix(hex.strip_prefix("0x")?, 16).ok()?;
    c.lit("\",\"total\":").ok()?;
    let total = c.raw_num().ok()?.parse().ok()?;
    c.lit("}").ok()?;
    c.end().ok()?;
    Some((version, spec_hash, total))
}

/// Parses one record line back into `(job index, outcome)` with no
/// journal context.
///
/// This is the validation primitive for consumers of *untrusted* record
/// lines — the dispatch coordinator runs every record a peer streams
/// through it, then re-renders the outcome against its own campaign and
/// compares bytes, so a lying peer (wrong spec, foreign campaign,
/// out-of-range index) is caught before anything reaches a journal.
///
/// # Errors
/// A description of the first grammar violation.
pub fn parse_record_line(line: &str) -> Result<(usize, JobOutcome), String> {
    parse_record(line)
}

/// Parses one record line back into `(job index, outcome)`.
///
/// The parser walks the fixed field order [`render_record`] emits, so it
/// needs no general JSON machinery; metric values round-trip exactly
/// because the renderer uses Rust's shortest-round-trip float formatting.
fn parse_record(line: &str) -> Result<(usize, JobOutcome), String> {
    let mut c = Cursor::new(line);
    c.lit("{\"campaign\":")?;
    let _ = c.string()?;
    c.lit(",\"job\":")?;
    let index: usize = c
        .raw_num()?
        .parse()
        .map_err(|_| "bad job index".to_owned())?;
    c.lit(",\"seed\":")?;
    let _ = c.raw_num()?;
    for key in ["device", "model", "policy", "sched", "mapping"] {
        c.lit(&format!(",\"{key}\":"))?;
        let _ = c.string()?;
    }
    c.lit(",\"channels\":")?;
    let _ = c.raw_num()?;
    c.lit(",\"traffic\":")?;
    let _ = c.string()?;
    for key in ["read_pct", "requests", "error_rate"] {
        c.lit(&format!(",\"{key}\":"))?;
        let _ = c.raw_num()?;
    }
    c.lit(",\"outcome\":\"")?;
    let outcome = if c.lit("ok\"").is_ok() {
        c.lit(",\"attempts\":")?;
        let attempts = c
            .raw_num()?
            .parse()
            .map_err(|_| "bad attempts".to_owned())?;
        c.lit(",\"metrics\":{")?;
        let mut metrics = JobMetrics::new();
        if c.lit("}").is_err() {
            loop {
                let key = c.string()?;
                c.lit(":")?;
                metrics.set(key, parse_f64(c.raw_num()?)?);
                if c.lit(",").is_err() {
                    c.lit("}")?;
                    break;
                }
            }
        }
        c.lit("}")?;
        JobOutcome::Completed { metrics, attempts }
    } else {
        c.lit("failed\"")?;
        c.lit(",\"attempts\":")?;
        let attempts = c
            .raw_num()?
            .parse()
            .map_err(|_| "bad attempts".to_owned())?;
        c.lit(",\"panic_msg\":")?;
        let panic_msg = c.string()?;
        c.lit("}")?;
        JobOutcome::Failed {
            panic_msg,
            attempts,
        }
    };
    c.end()?;
    Ok((index, outcome))
}

/// A JSON metric value: a finite number, or `null` for the non-finite
/// values the renderer cannot represent.
fn parse_f64(raw: &str) -> Result<f64, String> {
    if raw == "null" {
        return Ok(f64::NAN);
    }
    raw.parse().map_err(|_| format!("bad metric value {raw:?}"))
}

/// A cursor over one journal line, consuming the exact grammar
/// [`render_record`] writes.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Self { s, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    /// Consumes the literal `l`, or fails without consuming anything.
    fn lit(&mut self, l: &str) -> Result<(), String> {
        if self.rest().starts_with(l) {
            self.pos += l.len();
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                l,
                self.pos,
                &self.rest()[..self.rest().len().min(24)]
            ))
        }
    }

    /// Consumes up to (not including) the next `stop` character.
    fn until(&mut self, stop: char) -> Result<&'a str, String> {
        let end = self
            .rest()
            .find(stop)
            .ok_or_else(|| format!("unterminated field at byte {}", self.pos))?;
        let s = &self.rest()[..end];
        self.pos += end;
        Ok(s)
    }

    /// Consumes a bare JSON number (or `null`) up to the next delimiter.
    fn raw_num(&mut self) -> Result<&'a str, String> {
        let end = self
            .rest()
            .find([',', '}', ':'])
            .unwrap_or(self.rest().len());
        if end == 0 {
            return Err(format!("expected a number at byte {}", self.pos));
        }
        let s = &self.rest()[..end];
        self.pos += end;
        Ok(s)
    }

    /// Consumes a quoted JSON string, decoding the escapes the renderer
    /// emits.
    fn string(&mut self) -> Result<String, String> {
        self.lit("\"")?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        loop {
            let (i, ch) = chars
                .next()
                .ok_or_else(|| "unterminated string".to_owned())?;
            match ch {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars.next().ok_or_else(|| "truncated escape".to_owned())?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| "truncated \\u escape".to_owned())?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| format!("bad hex digit {h:?}"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    /// Asserts the whole line was consumed.
    fn end(&self) -> Result<(), String> {
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(format!("trailing bytes {:?}", self.rest()))
        }
    }
}

/// Minimal JSON string escaping for the header's campaign name (matches
/// the report renderer's escaping).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Campaign;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dramctrl-journal-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn campaign() -> Campaign {
        Campaign::new("journal-test", 11).read_pcts([0, 50, 100])
    }

    fn record(c: &Campaign, index: usize) -> JobRecord {
        let job = c.expand()[index].clone();
        JobRecord {
            job,
            outcome: JobOutcome::Completed {
                metrics: JobMetrics::new()
                    .with("bus_util", 0.625)
                    .with("weird \"name\"", f64::NAN),
                attempts: 1,
            },
        }
    }

    #[test]
    fn create_commit_resume_round_trip() {
        let p = tmp("round.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        assert!(j.commit(&record(&c, 1)).unwrap());
        assert!(j.commit(&record(&c, 0)).unwrap());
        drop(j);

        let j = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(j.total(), 3);
        assert!(!j.dropped_torn_tail());
        assert_eq!(
            j.completed().keys().copied().collect::<Vec<_>>(),
            vec![0, 1]
        );
        // Metrics survive the round trip, non-finite values as NaN.
        let JobOutcome::Completed { metrics, attempts } = &j.completed()[&1] else {
            panic!("expected completed");
        };
        assert_eq!(*attempts, 1);
        assert_eq!(metrics.get("bus_util"), Some(0.625));
        assert!(metrics.get("weird \"name\"").unwrap().is_nan());
    }

    #[test]
    fn commit_is_the_single_append_point() {
        let p = tmp("dedup.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        assert!(j.commit(&record(&c, 2)).unwrap(), "first commit appends");
        assert!(!j.commit(&record(&c, 2)).unwrap(), "second is a no-op");
        drop(j);
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 2, "header + exactly one record");
        // And a resumed journal refuses the double append just the same.
        let mut j = CampaignJournal::resume(&p, &c).unwrap();
        assert!(!j.commit(&record(&c, 2)).unwrap());
    }

    #[test]
    fn journaled_lines_match_report_lines_byte_for_byte() {
        let p = tmp("bytes.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        let failed = JobRecord {
            job: c.expand()[0].clone(),
            outcome: JobOutcome::Failed {
                panic_msg: "boom \"quoted\"\nline2".to_owned(),
                attempts: 2,
            },
        };
        j.commit(&failed).unwrap();
        j.commit(&record(&c, 1)).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&p).unwrap();
        let mut lines = text.lines().skip(1);
        assert_eq!(
            lines.next().unwrap(),
            render_record("journal-test", &failed)
        );
        assert_eq!(
            lines.next().unwrap(),
            render_record("journal-test", &record(&c, 1))
        );
        // Failed outcomes round-trip through resume too.
        let j = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(j.completed()[&0], failed.outcome);
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let p = tmp("torn.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        j.commit(&record(&c, 0)).unwrap();
        drop(j);
        let good = std::fs::read_to_string(&p).unwrap();
        // Simulate a crash mid-append: half a record, no newline.
        let full_line = render_record("journal-test", &record(&c, 1));
        std::fs::write(&p, format!("{good}{}", &full_line[..full_line.len() / 2])).unwrap();

        let mut j = CampaignJournal::resume(&p, &c).unwrap();
        assert!(j.dropped_torn_tail());
        assert_eq!(j.completed().len(), 1);
        // The torn bytes are gone and new appends land on a clean line.
        j.commit(&record(&c, 1)).unwrap();
        drop(j);
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        let j = CampaignJournal::resume(&p, &c).unwrap();
        assert_eq!(j.completed().len(), 2);
    }

    #[test]
    fn duplicate_index_keeps_first() {
        let p = tmp("dup.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p, &c).unwrap();
        j.commit(&record(&c, 0)).unwrap();
        drop(j);
        // Hand-append a second record for the same index with different
        // metrics; the first (earliest durable) record must win.
        let mut second = record(&c, 0);
        second.outcome = JobOutcome::Completed {
            metrics: JobMetrics::new().with("bus_util", 0.0),
            attempts: 9,
        };
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        use std::io::Write as _;
        writeln!(f, "{}", render_record("journal-test", &second)).unwrap();
        drop(f);
        let j = CampaignJournal::resume(&p, &c).unwrap();
        let JobOutcome::Completed { metrics, attempts } = &j.completed()[&0] else {
            panic!("expected completed");
        };
        assert_eq!(metrics.get("bus_util"), Some(0.625), "first record wins");
        assert_eq!(*attempts, 1);
    }

    #[test]
    fn wrong_campaign_is_rejected_loudly() {
        let p = tmp("mismatch.jsonl");
        let c = campaign();
        CampaignJournal::create(&p, &c).unwrap();
        let other = Campaign::new("journal-test", 11).read_pcts([0, 50]);
        match CampaignJournal::resume(&p, &other) {
            Err(JournalError::SpecMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected SpecMismatch, got {other:?}"),
        }
        // Same axes, different seed: also a different campaign.
        let reseeded = Campaign::new("journal-test", 12).read_pcts([0, 50, 100]);
        assert!(matches!(
            CampaignJournal::resume(&p, &reseeded),
            Err(JournalError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn merge_overlapping_partial_shards_keeps_first_byte_identically() {
        let c = campaign(); // 3 jobs
                            // A full single journal is the byte-identity reference.
        let full = tmp("merge-full.jsonl");
        let mut j = CampaignJournal::create(&full, &c).unwrap();
        for i in 0..3 {
            j.commit(&record(&c, i)).unwrap();
        }
        drop(j);
        let reference = merge_journals(&c, &[&full]).unwrap();

        // Shard A covers {0, 1}; shard B overlaps on 1 (with a
        // *different* outcome — a re-dispatched shard re-ran the job
        // with more attempts) and adds 2.
        let a = tmp("merge-a.jsonl");
        let mut j = CampaignJournal::create(&a, &c).unwrap();
        j.commit(&record(&c, 0)).unwrap();
        j.commit(&record(&c, 1)).unwrap();
        drop(j);
        let b = tmp("merge-b.jsonl");
        let mut j = CampaignJournal::create(&b, &c).unwrap();
        let mut dup = record(&c, 1);
        dup.outcome = JobOutcome::Completed {
            metrics: JobMetrics::new().with("bus_util", 0.999),
            attempts: 2,
        };
        j.commit(&dup).unwrap();
        j.commit(&record(&c, 2)).unwrap();
        drop(j);

        let merged = merge_journals(&c, &[&a, &b]).unwrap();
        assert_eq!(
            merged.to_jsonl(),
            reference.to_jsonl(),
            "keep-first must pick shard A's record for the overlap"
        );
        // Path order decides the winner: B first surfaces B's duplicate.
        let swapped = merge_journals(&c, &[&b, &a]).unwrap();
        assert_ne!(swapped.to_jsonl(), reference.to_jsonl());
    }

    #[test]
    fn merge_refuses_a_foreign_spec_hash() {
        let c = campaign();
        let mine = tmp("merge-mine.jsonl");
        let mut j = CampaignJournal::create(&mine, &c).unwrap();
        for i in 0..3 {
            j.commit(&record(&c, i)).unwrap();
        }
        drop(j);
        // Same name and job count, different seed: the spec hash (and
        // every per-job seed) differs, so merging would fabricate
        // results. The refusal must be loud, not a silent skip.
        let foreign_campaign = Campaign::new("journal-test", 12).read_pcts([0, 50, 100]);
        let foreign = tmp("merge-foreign.jsonl");
        let mut j = CampaignJournal::create(&foreign, &foreign_campaign).unwrap();
        j.commit(&JobRecord {
            job: foreign_campaign.expand()[0].clone(),
            outcome: JobOutcome::Completed {
                metrics: JobMetrics::new(),
                attempts: 1,
            },
        })
        .unwrap();
        drop(j);
        assert!(matches!(
            merge_journals(&c, &[&mine, &foreign]),
            Err(JournalError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn merge_accepts_an_empty_but_headered_shard() {
        let c = campaign();
        let full = tmp("merge-full2.jsonl");
        let mut j = CampaignJournal::create(&full, &c).unwrap();
        for i in 0..3 {
            j.commit(&record(&c, i)).unwrap();
        }
        drop(j);
        // A shard whose peer never committed anything before dying:
        // valid journal, zero contribution.
        let empty = tmp("merge-empty.jsonl");
        drop(CampaignJournal::create(&empty, &c).unwrap());

        let reference = merge_journals(&c, &[&full]).unwrap();
        let merged = merge_journals(&c, &[&empty, &full]).unwrap();
        assert_eq!(merged.to_jsonl(), reference.to_jsonl());

        // And alone, it is Incomplete — every job missing — never a
        // truncated report.
        match merge_journals(&c, &[&empty]) {
            Err(JournalError::Incomplete {
                missing,
                first_missing,
                total,
            }) => {
                assert_eq!((missing, first_missing, total), (3, 0, 3));
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn parse_record_line_round_trips_and_rejects_garbage() {
        let c = campaign();
        let rec = record(&c, 1);
        let line = rec.render(&c.name);
        let (index, outcome) = parse_record_line(&line).unwrap();
        assert_eq!(index, 1);
        // Re-rendering the parsed outcome against the local spec is the
        // coordinator's byte-level validation of streamed records.
        let rebuilt = JobRecord {
            job: c.expand()[index].clone(),
            outcome,
        };
        assert_eq!(rebuilt.render(&c.name), line);
        assert!(parse_record_line("{\"event\":\"record\"}").is_err());
        assert!(parse_record_line("").is_err());
    }

    #[test]
    fn non_journal_and_corrupt_files_are_rejected() {
        let p = tmp("bogus.jsonl");
        std::fs::write(&p, "{\"not\":\"a journal\"}\n").unwrap();
        assert!(matches!(
            CampaignJournal::resume(&p, &campaign()),
            Err(JournalError::NotAJournal)
        ));
        // A corrupt line that is *not* the torn tail is an error, not a
        // silent skip: it means the file was edited or the disk lied.
        let p2 = tmp("corrupt.jsonl");
        let c = campaign();
        let mut j = CampaignJournal::create(&p2, &c).unwrap();
        j.commit(&record(&c, 0)).unwrap();
        drop(j);
        let mut text = std::fs::read_to_string(&p2).unwrap();
        text.push_str("{\"campaign\":\"mangled\n");
        text.push_str(&render_record("journal-test", &record(&c, 1)));
        text.push('\n');
        std::fs::write(&p2, text).unwrap();
        assert!(matches!(
            CampaignJournal::resume(&p2, &c),
            Err(JournalError::Corrupt { line: 3, .. })
        ));
    }

    #[test]
    fn out_of_range_index_is_corrupt() {
        let p = tmp("range.jsonl");
        let c = campaign();
        CampaignJournal::create(&p, &c).unwrap();
        // A record from a bigger campaign that happens to share a prefix.
        let big = Campaign::new("journal-test", 11).read_pcts(0..100);
        let mut text = std::fs::read_to_string(&p).unwrap();
        text.push_str(&render_record("journal-test", &record(&big, 50)));
        text.push('\n');
        std::fs::write(&p, text).unwrap();
        assert!(matches!(
            CampaignJournal::resume(&p, &c),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
    }

    #[test]
    fn campaign_hash_is_sensitive_to_every_axis() {
        let base = campaign();
        let h = campaign_hash(&base);
        assert_eq!(h, campaign_hash(&campaign()), "deterministic");
        assert_ne!(h, campaign_hash(&base.clone().read_pcts([0, 50])));
        assert_ne!(h, campaign_hash(&base.clone().channels([2])));
        assert_ne!(h, campaign_hash(&base.clone().error_rates([1e11])));
        assert_ne!(
            h,
            campaign_hash(&Campaign::new("journal-test", 12).read_pcts([0, 50, 100]))
        );
    }
}
