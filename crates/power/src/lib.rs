//! # dramctrl-power — Micron-style DRAM power model
//!
//! Implements the DRAM power methodology of Micron's TN-41-01 ("Calculating
//! Memory System Power for DDR3"), the model the paper uses (Section II-G):
//! power is computed *off-line* from controller statistics — page hit rate
//! is implicit in the activate count, data-bus utilisation gives read/write
//! burst power, and the time with all banks precharged splits the
//! background power between precharge and active standby.
//!
//! Both controller models export the same [`ActivityStats`], so the paper's
//! power-correlation experiment (Section III-C3: average ~3%, maximum ~8%
//! difference) is reproduced by feeding both models' statistics through
//! this one function.
//!
//! # Example
//!
//! ```
//! use dramctrl_mem::{presets, ActivityStats};
//! use dramctrl_power::micron_power;
//!
//! let spec = presets::ddr3_1333_x64();
//! let idle = ActivityStats {
//!     sim_time: 1_000_000_000, // 1 ms
//!     time_all_banks_precharged: 1_000_000_000,
//!     ranks: 1,
//!     ..Default::default()
//! };
//! let p = micron_power(&spec, &idle);
//! // An idle, fully precharged device burns only background power.
//! assert_eq!(p.activate_mw, 0.0);
//! assert!(p.background_mw > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;

pub use energy::{drampower_energy, EnergyBreakdown};

use dramctrl_kernel::Tick;
use dramctrl_mem::{ActivityStats, MemSpec};
use dramctrl_stats::Report;

/// DRAM power split into the TN-41-01 components, in milliwatts, for the
/// whole channel (all devices, all ranks). When the controller's
/// power-down extension is enabled, time spent powered down draws IDD2P
/// instead of IDD2N.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// Standby power: precharge standby (IDD2N) while all banks are
    /// closed, active standby (IDD3N) otherwise.
    pub background_mw: f64,
    /// Row activate/precharge power (IDD0 above the standby floor).
    pub activate_mw: f64,
    /// Read burst power (IDD4R above active standby).
    pub read_mw: f64,
    /// Write burst power (IDD4W above active standby).
    pub write_mw: f64,
    /// Refresh power (IDD5 above active standby).
    pub refresh_mw: f64,
}

impl PowerBreakdown {
    /// Total channel power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.background_mw + self.activate_mw + self.read_mw + self.write_mw + self.refresh_mw
    }

    /// Adds all components of another breakdown (e.g. to sum channels).
    pub fn accumulate(&mut self, other: &PowerBreakdown) {
        self.background_mw += other.background_mw;
        self.activate_mw += other.activate_mw;
        self.read_mw += other.read_mw;
        self.write_mw += other.write_mw;
        self.refresh_mw += other.refresh_mw;
    }

    /// Average energy per bit transferred, in picojoules, given the bytes
    /// moved during the window of `sim_time` ticks.
    pub fn energy_pj_per_bit(&self, bytes: u64, sim_time: Tick) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        // mW * ps = nanojoule * 1e-3; convert to pJ per bit.
        let energy_pj = self.total_mw() * sim_time as f64 * 1e-3;
        energy_pj / (bytes as f64 * 8.0)
    }

    /// Formats the breakdown as report entries under `prefix`.
    pub fn report(&self, prefix: &str) -> Report {
        let mut r = Report::new(prefix);
        r.scalar("background_mw", self.background_mw);
        r.scalar("activate_mw", self.activate_mw);
        r.scalar("read_mw", self.read_mw);
        r.scalar("write_mw", self.write_mw);
        r.scalar("refresh_mw", self.refresh_mw);
        r.scalar("total_mw", self.total_mw());
        r
    }
}

/// Computes the TN-41-01 power breakdown for `spec` from the activity of
/// one simulation window.
///
/// Returns all-zero power for an empty window (`sim_time == 0`).
pub fn micron_power(spec: &MemSpec, act: &ActivityStats) -> PowerBreakdown {
    if act.sim_time == 0 {
        return PowerBreakdown::default();
    }
    let idd = &spec.idd;
    let t = &spec.timing;
    let time = act.sim_time as f64;
    // All devices of all ranks switch together from the channel's
    // perspective; IDD currents are per device.
    let devices = f64::from(spec.org.devices_per_rank) * f64::from(spec.org.ranks);
    let mw = |current_ma: f64| current_ma * idd.vdd * devices;

    // Background: self-refresh (IDD6) deepest, power-down (IDD2P) next,
    // precharge standby (IDD2N) while idle but awake, active standby
    // (IDD3N) otherwise.
    let pre_frac = act.precharged_fraction().clamp(0.0, 1.0);
    let sr_frac = act.self_refresh_fraction().clamp(0.0, pre_frac);
    let pd_frac = act.powered_down_fraction().clamp(0.0, pre_frac - sr_frac);
    let background_mw = mw(idd.idd6) * sr_frac
        + mw(idd.idd2p) * pd_frac
        + mw(idd.idd2n) * (pre_frac - pd_frac - sr_frac)
        + mw(idd.idd3n) * (1.0 - pre_frac);

    // Activate/precharge: IDD0 is measured cycling one bank at tRC
    // (tRAS active + tRP precharged); subtract the standby floor and scale
    // by how often we actually activate relative to that measurement
    // cadence.
    let t_rc = (t.t_ras + t.t_rp) as f64;
    let idd0_floor = (idd.idd3n * t.t_ras as f64 + idd.idd2n * t.t_rp as f64) / t_rc;
    let act_scale = act.activates as f64 * t_rc / time;
    let activate_mw = mw((idd.idd0 - idd0_floor).max(0.0)) * act_scale;

    // Read/write burst power above active standby, scaled by data-bus duty
    // cycle in each direction.
    let rd_duty = (act.rd_bursts as f64 * t.t_burst as f64 / time).min(1.0);
    let wr_duty = (act.wr_bursts as f64 * t.t_burst as f64 / time).min(1.0);
    let read_mw = mw((idd.idd4r - idd.idd3n).max(0.0)) * rd_duty;
    let write_mw = mw((idd.idd4w - idd.idd3n).max(0.0)) * wr_duty;

    // Refresh: IDD5 above active standby for tRFC per refresh performed.
    let ref_duty = (act.refreshes as f64 * t.t_rfc as f64 / time).min(1.0);
    let refresh_mw = mw((idd.idd5 - idd.idd3n).max(0.0)) * ref_duty;

    PowerBreakdown {
        background_mw,
        activate_mw,
        read_mw,
        write_mw,
        refresh_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dramctrl_kernel::rng::Rng;
    use dramctrl_kernel::tick::MS;
    use dramctrl_mem::presets;

    fn spec() -> MemSpec {
        presets::ddr3_1333_x64()
    }

    fn idle(sim_time: Tick) -> ActivityStats {
        ActivityStats {
            sim_time,
            time_all_banks_precharged: sim_time,
            ranks: 1,
            ..Default::default()
        }
    }

    #[test]
    fn empty_window_is_zero() {
        let p = micron_power(&spec(), &ActivityStats::default());
        assert_eq!(p.total_mw(), 0.0);
    }

    #[test]
    fn idle_precharged_is_idd2n_floor() {
        let p = micron_power(&spec(), &idle(MS));
        // 8 devices at IDD2N = 42 mA, 1.5 V: 504 mW.
        assert!((p.background_mw - 8.0 * 42.0 * 1.5).abs() < 1e-9);
        assert_eq!(p.activate_mw, 0.0);
        assert_eq!(p.read_mw, 0.0);
        assert_eq!(p.refresh_mw, 0.0);
    }

    #[test]
    fn open_banks_cost_active_standby() {
        let mut act = idle(MS);
        act.time_all_banks_precharged = 0;
        let open = micron_power(&spec(), &act);
        let closed = micron_power(&spec(), &idle(MS));
        assert!(open.background_mw > closed.background_mw);
        // 8 devices at IDD3N = 45 mA, 1.5 V: 540 mW.
        assert!((open.background_mw - 8.0 * 45.0 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn activates_add_power_proportionally() {
        let mut a = idle(MS);
        a.activates = 1_000;
        let mut b = idle(MS);
        b.activates = 2_000;
        let (pa, pb) = (micron_power(&spec(), &a), micron_power(&spec(), &b));
        assert!(pa.activate_mw > 0.0);
        assert!((pb.activate_mw / pa.activate_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_reads_hit_idd4r_delta() {
        let s = spec();
        let mut act = idle(MS);
        act.time_all_banks_precharged = 0;
        // Bus fully busy with reads.
        act.rd_bursts = MS / s.timing.t_burst;
        let p = micron_power(&s, &act);
        let expect = 8.0 * (s.idd.idd4r - s.idd.idd3n) * 1.5;
        assert!((p.read_mw - expect).abs() / expect < 1e-4);
    }

    #[test]
    fn refresh_power_tracks_refresh_rate() {
        let s = spec();
        let mut act = idle(MS);
        // Nominal refresh cadence: one per tREFI.
        act.refreshes = MS / s.timing.t_refi;
        let p = micron_power(&s, &act);
        assert!(p.refresh_mw > 0.0);
        // Roughly (tRFC/tREFI) * (IDD5-IDD3N) * VDD * devices.
        let duty = s.timing.t_rfc as f64 / s.timing.t_refi as f64;
        let expect = 8.0 * (s.idd.idd5 - s.idd.idd3n) * 1.5 * duty;
        assert!((p.refresh_mw - expect).abs() / expect < 0.05);
    }

    #[test]
    fn accumulate_sums_channels() {
        let mut total = PowerBreakdown::default();
        let p = micron_power(&spec(), &idle(MS));
        total.accumulate(&p);
        total.accumulate(&p);
        assert!((total.total_mw() - 2.0 * p.total_mw()).abs() < 1e-9);
    }

    #[test]
    fn energy_per_bit_sane_for_ddr3() {
        let s = spec();
        let mut act = idle(MS);
        act.time_all_banks_precharged = MS / 2;
        act.rd_bursts = MS / s.timing.t_burst / 2;
        act.activates = act.rd_bursts / 16;
        act.refreshes = MS / s.timing.t_refi;
        let bytes = act.rd_bursts * s.org.burst_bytes();
        let p = micron_power(&s, &act);
        let pj = p.energy_pj_per_bit(bytes, MS);
        // DDR3 systems land in the tens of pJ/bit.
        assert!((5.0..200.0).contains(&pj), "pj/bit = {pj}");
    }

    #[test]
    fn powered_down_time_draws_idd2p() {
        let s = spec();
        let mut act = idle(MS);
        act.time_powered_down = MS; // fully powered down
        let pd = micron_power(&s, &act);
        let awake = micron_power(&s, &idle(MS));
        assert!(pd.background_mw < awake.background_mw);
        // 8 devices at IDD2P = 12 mA, 1.5 V.
        assert!((pd.background_mw - 8.0 * 12.0 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn report_has_all_components() {
        let r = micron_power(&spec(), &idle(MS)).report("dram_power");
        for key in [
            "background_mw",
            "activate_mw",
            "read_mw",
            "write_mw",
            "refresh_mw",
            "total_mw",
        ] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
    }

    /// Power is always non-negative and monotone in each activity
    /// component.
    #[test]
    fn monotone_components() {
        let mut rng = Rng::seed_from_u64(0x70EE_0001);
        for _ in 0..512 {
            let acts = rng.gen_range(0..100_000);
            let rd = rng.gen_range(0..100_000);
            let wr = rng.gen_range(0..100_000);
            let refs = rng.gen_range(0..100);
            let pre = rng.gen_range_inclusive(0..=1_000);
            let s = spec();
            let window = 10 * MS;
            let base = ActivityStats {
                sim_time: window,
                activates: acts,
                precharges: acts,
                rd_bursts: rd,
                wr_bursts: wr,
                refreshes: refs,
                time_all_banks_precharged: window * pre / 1_000,
                time_powered_down: 0,
                time_self_refresh: 0,
                ranks: 1,
            };
            let p = micron_power(&s, &base);
            assert!(p.total_mw() >= 0.0);
            for bump in [
                ActivityStats {
                    activates: acts + 100,
                    ..base
                },
                ActivityStats {
                    rd_bursts: rd + 100,
                    ..base
                },
                ActivityStats {
                    wr_bursts: wr + 100,
                    ..base
                },
                ActivityStats {
                    refreshes: refs + 10,
                    ..base
                },
            ] {
                assert!(micron_power(&s, &bump).total_mw() >= p.total_mw());
            }
            // More precharged time never increases power.
            let more_pre = ActivityStats {
                time_all_banks_precharged: window,
                ..base
            };
            assert!(micron_power(&s, &more_pre).total_mw() <= p.total_mw() + 1e-9);
        }
    }
}
