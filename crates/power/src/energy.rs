//! DRAMPower-style per-operation energy accounting.
//!
//! The paper (Section III-E) notes its statistics interface "can be
//! further extended to plug in other models like DRAMPower". DRAMPower's
//! methodology charges an *energy* per command — activate/precharge pair,
//! read burst, write burst, refresh — plus state-dependent background
//! energy, instead of time-averaged power. Both views consume the same
//! [`ActivityStats`]; integrating this model's energies over the window
//! reproduces the Micron model's average power exactly (asserted by the
//! `energy_and_power_agree` test), which is the point: the controller's
//! statistics are model-agnostic.

use dramctrl_kernel::{tick, Tick};
use dramctrl_mem::{ActivityStats, MemSpec};
use dramctrl_stats::Report;

/// Energy consumed over a simulation window, split per command class, in
/// nanojoules, for the whole channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activate/precharge pair energy.
    pub act_nj: f64,
    /// Read burst energy (above active standby).
    pub read_nj: f64,
    /// Write burst energy (above active standby).
    pub write_nj: f64,
    /// Refresh energy (above active standby).
    pub refresh_nj: f64,
    /// State-dependent background energy (standby, power-down,
    /// self-refresh).
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Average power over the window, in milliwatts.
    pub fn avg_power_mw(&self, sim_time: Tick) -> f64 {
        if sim_time == 0 {
            0.0
        } else {
            // nJ / s = nW; convert to mW.
            self.total_nj() / tick::to_s(sim_time) / 1e6
        }
    }

    /// Energy per activate, in nanojoules, given the activate count.
    pub fn per_act_nj(&self, activates: u64) -> f64 {
        if activates == 0 {
            0.0
        } else {
            self.act_nj / activates as f64
        }
    }

    /// Formats the breakdown under `prefix`.
    pub fn report(&self, prefix: &str) -> Report {
        let mut r = Report::new(prefix);
        r.scalar("act_nj", self.act_nj);
        r.scalar("read_nj", self.read_nj);
        r.scalar("write_nj", self.write_nj);
        r.scalar("refresh_nj", self.refresh_nj);
        r.scalar("background_nj", self.background_nj);
        r.scalar("total_nj", self.total_nj());
        r
    }
}

/// Millamp × volt × ticks to nanojoules (for one device).
fn nj(current_ma: f64, vdd: f64, duration: Tick) -> f64 {
    // mA * V = mW; mW * ps = 1e-15 J = 1e-6 nJ.
    current_ma * vdd * duration as f64 * 1e-6
}

/// Computes the per-operation energy breakdown for `spec` over one
/// simulation window, DRAMPower-style.
pub fn drampower_energy(spec: &MemSpec, act: &ActivityStats) -> EnergyBreakdown {
    if act.sim_time == 0 {
        return EnergyBreakdown::default();
    }
    let idd = &spec.idd;
    let t = &spec.timing;
    let devices = f64::from(spec.org.devices_per_rank) * f64::from(spec.org.ranks);
    let e = |ma: f64, dur: Tick| nj(ma, idd.vdd, dur) * devices;

    // One ACT/PRE pair: the IDD0 measurement minus the standby floor over
    // one tRC.
    let t_rc = t.t_ras + t.t_rp;
    let idd0_floor = (idd.idd3n * t.t_ras as f64 + idd.idd2n * t.t_rp as f64) / t_rc as f64;
    let act_nj = act.activates as f64 * e((idd.idd0 - idd0_floor).max(0.0), t_rc);

    // Bursts: delta current over the burst duration.
    let read_nj = act.rd_bursts as f64 * e((idd.idd4r - idd.idd3n).max(0.0), t.t_burst);
    let write_nj = act.wr_bursts as f64 * e((idd.idd4w - idd.idd3n).max(0.0), t.t_burst);

    // Refresh: delta current over tRFC per refresh.
    let refresh_nj = act.refreshes as f64 * e((idd.idd5 - idd.idd3n).max(0.0), t.t_rfc);

    // Background by state. The per-rank state times sum over ranks, so
    // divide by ranks to get wall-clock durations and multiply device
    // count back in via `e` (which already covers all ranks' devices).
    let ranks = u64::from(act.ranks.max(1));
    let sr = act.time_self_refresh / ranks;
    let pd = act.time_powered_down / ranks;
    let pre = (act.time_all_banks_precharged / ranks)
        .min(act.sim_time)
        .saturating_sub(sr)
        .saturating_sub(pd);
    let active = act
        .sim_time
        .saturating_sub(sr)
        .saturating_sub(pd)
        .saturating_sub(pre);
    let background_nj =
        e(idd.idd6, sr) + e(idd.idd2p, pd) + e(idd.idd2n, pre) + e(idd.idd3n, active);

    EnergyBreakdown {
        act_nj,
        read_nj,
        write_nj,
        refresh_nj,
        background_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micron_power;
    use dramctrl_kernel::tick::MS;
    use dramctrl_mem::presets;

    fn busy_window() -> ActivityStats {
        let s = presets::ddr3_1333_x64();
        ActivityStats {
            sim_time: MS,
            activates: 5_000,
            precharges: 5_000,
            rd_bursts: 60_000,
            wr_bursts: 20_000,
            refreshes: MS / s.timing.t_refi,
            time_all_banks_precharged: MS / 4,
            time_powered_down: MS / 8,
            time_self_refresh: 0,
            ranks: 1,
        }
    }

    #[test]
    fn empty_window_is_zero() {
        let e = drampower_energy(&presets::ddr3_1333_x64(), &ActivityStats::default());
        assert_eq!(e.total_nj(), 0.0);
        assert_eq!(e.avg_power_mw(0), 0.0);
    }

    /// The two power models are algebraically equivalent on the same
    /// statistics: integrating the per-op energies over the window gives
    /// the Micron model's average power.
    #[test]
    fn energy_and_power_agree() {
        let spec = presets::ddr3_1333_x64();
        let act = busy_window();
        let p = micron_power(&spec, &act).total_mw();
        let e = drampower_energy(&spec, &act).avg_power_mw(act.sim_time);
        assert!((p - e).abs() / p < 1e-9, "micron {p} vs drampower {e}");
    }

    #[test]
    fn per_act_energy_is_constant() {
        let spec = presets::ddr3_1333_x64();
        let mut a = busy_window();
        let e1 = drampower_energy(&spec, &a);
        a.activates *= 3;
        let e3 = drampower_energy(&spec, &a);
        let (p1, p3) = (e1.per_act_nj(5_000), e3.per_act_nj(15_000));
        assert!(p1 > 0.0);
        assert!((p1 - p3).abs() < 1e-12);
        // DDR3 activate energy lands in the nanojoule class.
        assert!((0.1..50.0).contains(&p1), "per-act {p1} nJ");
    }

    #[test]
    fn read_energy_scales_with_bursts() {
        let spec = presets::ddr3_1333_x64();
        let mut a = busy_window();
        let base = drampower_energy(&spec, &a).read_nj;
        a.rd_bursts *= 2;
        assert!((drampower_energy(&spec, &a).read_nj - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn self_refresh_background_is_cheapest() {
        let spec = presets::ddr3_1333_x64();
        let idle = |pd: Tick, sr: Tick| ActivityStats {
            sim_time: MS,
            time_all_banks_precharged: MS,
            time_powered_down: pd,
            time_self_refresh: sr,
            ranks: 1,
            ..Default::default()
        };
        let awake = drampower_energy(&spec, &idle(0, 0)).background_nj;
        let pd = drampower_energy(&spec, &idle(MS, 0)).background_nj;
        let sr = drampower_energy(&spec, &idle(0, MS)).background_nj;
        assert!(sr < pd && pd < awake);
    }

    #[test]
    fn report_entries_present() {
        let r = drampower_energy(&presets::ddr3_1333_x64(), &busy_window()).report("energy");
        for key in [
            "act_nj",
            "read_nj",
            "write_nj",
            "refresh_nj",
            "background_nj",
            "total_nj",
        ] {
            assert!(r.get(key).is_some(), "missing {key}");
        }
    }
}
