//! The paper's power-correlation experiment (Section III-C3): run the same
//! workloads through both controller models and compare the Micron power
//! numbers. The paper reports an average difference of ~3% and a maximum
//! of ~8%; the differences stem from the controllers' architectural and
//! scheduling differences, not from the power model (which is shared).

use dramctrl::{CtrlConfig, DramCtrl, PagePolicy};
use dramctrl_cycle::{CycleConfig, CycleCtrl, CyclePagePolicy};
use dramctrl_mem::{presets, AddrMapping, Controller};
use dramctrl_power::micron_power;
use dramctrl_traffic::{DramAwareGen, Tester};

/// Runs a DRAM-aware workload through both models and returns
/// (event power mW, cycle power mW).
fn power_pair(stride: u64, banks: u32, read_pct: u8, open_page: bool) -> (f64, f64) {
    let spec = presets::ddr3_1333_x64();
    let mapping = if open_page {
        AddrMapping::RoRaBaCoCh
    } else {
        AddrMapping::RoCoRaBaCh
    };
    let mk_gen = || {
        DramAwareGen::new(
            spec.org, mapping, 1, 0, stride, banks, read_pct, 0, 3_000, 11,
        )
    };
    let t = Tester::new(50_000, 500);

    let mut ev_cfg = CtrlConfig::new(spec.clone());
    ev_cfg.mapping = mapping;
    ev_cfg.page_policy = if open_page {
        PagePolicy::Open
    } else {
        PagePolicy::Closed
    };
    let mut ev = DramCtrl::new(ev_cfg).unwrap();
    let ev_sum = t.run(&mut mk_gen(), &mut ev);
    let ev_power = micron_power(&spec, &Controller::activity(&mut ev, ev_sum.duration));

    let mut cy_cfg = CycleConfig::new(spec.clone());
    cy_cfg.mapping = mapping;
    cy_cfg.page_policy = if open_page {
        CyclePagePolicy::Open
    } else {
        CyclePagePolicy::Closed
    };
    let mut cy = CycleCtrl::new(cy_cfg).unwrap();
    let cy_sum = t.run(&mut mk_gen(), &mut cy);
    let cy_power = micron_power(&spec, &cy.activity(cy_sum.duration));

    (ev_power.total_mw(), cy_power.total_mw())
}

#[test]
fn power_correlates_across_test_cases() {
    let cases = [
        (1, 1, 100, true),
        (16, 4, 100, true),
        (128, 8, 100, true),
        (16, 4, 50, true),
        (1, 8, 0, false),
        (16, 8, 50, false),
    ];
    let mut max_diff: f64 = 0.0;
    let mut sum_diff = 0.0;
    for &(stride, banks, read_pct, open) in &cases {
        let (e, c) = power_pair(stride, banks, read_pct, open);
        assert!(e > 0.0 && c > 0.0);
        let diff = (e - c).abs() / c;
        eprintln!(
            "case stride={stride} banks={banks} rd={read_pct} open={open}: ev={e:.1} cy={c:.1} diff={diff:.3}"
        );
        max_diff = max_diff.max(diff);
        sum_diff += diff;
    }
    let avg_diff = sum_diff / cases.len() as f64;
    // Paper: average ~3%, max ~8%. Allow headroom for our re-implemented
    // baseline but keep the claim's order of magnitude.
    assert!(avg_diff < 0.08, "average power difference {avg_diff:.3}");
    assert!(max_diff < 0.15, "max power difference {max_diff:.3}");
}

#[test]
fn busier_workload_burns_more_power() {
    let (idle_ish, _) = power_pair(1, 1, 100, true);
    let (busy, _) = power_pair(128, 8, 100, true);
    assert!(
        busy > idle_ish,
        "saturated ({busy:.0} mW) should exceed bank-bound ({idle_ish:.0} mW)"
    );
}
