//! The fault injector and degradation bookkeeping engine.
//!
//! The controllers call [`FaultModel::check`] once per serviced burst
//! (at the tick the data transfer completes) and act on the returned
//! [`BurstReport`]: retry on link errors, keep going on corrected or
//! silent faults, degrade (remap / offline) on uncorrectable ones — the
//! degradation decision itself is made here so both controllers share one
//! policy.

use crate::config::{per_tick, RasConfig, RasGeometry};
use crate::ecc::{classify, EccOutcome};
use dramctrl_kernel::hash::DetMap;
use dramctrl_kernel::rng::splitmix64;
use dramctrl_kernel::snap::{SnapError, SnapReader, SnapState, SnapWriter};
use dramctrl_kernel::Tick;

/// The kinds of fault the injector models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient single-bit upset (cleared once observed).
    Transient,
    /// Stuck-at row: a persistent single-symbol fault in one row.
    StuckRow,
    /// Hard chip/rank failure: persistent multi-symbol corruption.
    RankFail,
    /// Write-CRC error signalled via ALERT_n (DDR4-style).
    WriteCrc,
    /// Command/address parity error.
    CaParity,
}

impl FaultKind {
    /// Canonical lower-case name used in fault logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::StuckRow => "stuck-row",
            FaultKind::RankFail => "rank-fail",
            FaultKind::WriteCrc => "write-crc",
            FaultKind::CaParity => "ca-parity",
        }
    }
}

/// What the controller should do with a just-serviced burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstOutcome {
    /// No fault: proceed normally.
    Clean,
    /// A fault occurred and ECC corrected it: proceed, count it.
    Corrected,
    /// A detected-uncorrectable fault: data is poisoned, degradation has
    /// been recorded; proceed (deliver the poisoned response) rather than
    /// abort.
    Uncorrected,
    /// An undetected fault: silent data corruption (only the simulator
    /// knows); proceed.
    Silent,
    /// A link error (write CRC or C/A parity): the burst did not take
    /// effect — retry it with backoff, or give up after
    /// [`RasConfig::max_retries`].
    LinkError,
}

impl BurstOutcome {
    /// Canonical lower-case name used in fault logs.
    pub fn name(self) -> &'static str {
        match self {
            BurstOutcome::Clean => "clean",
            BurstOutcome::Corrected => "corrected",
            BurstOutcome::Uncorrected => "uncorrected",
            BurstOutcome::Silent => "silent",
            BurstOutcome::LinkError => "link-error",
        }
    }
}

/// Everything [`FaultModel::check`] decided about one burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstReport {
    /// The controller-facing disposition.
    pub outcome: BurstOutcome,
    /// The underlying fault, when one occurred.
    pub kind: Option<FaultKind>,
    /// Whether this burst's row was just remapped to a spare.
    pub remapped: bool,
    /// A rank that was just taken offline by this burst, if any.
    pub offlined_rank: Option<u32>,
}

impl BurstReport {
    fn clean() -> Self {
        Self {
            outcome: BurstOutcome::Clean,
            kind: None,
            remapped: false,
            offlined_rank: None,
        }
    }
}

/// One entry of the deterministic fault log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Tick the fault was observed (burst data-end time).
    pub at: Tick,
    /// Faulting rank.
    pub rank: u32,
    /// Faulting bank.
    pub bank: u32,
    /// Faulting row.
    pub row: u64,
    /// What went wrong.
    pub kind: FaultKind,
    /// How it was classified / handled.
    pub outcome: BurstOutcome,
}

/// Error, retry and degradation counters. All start at zero; the
/// controllers publish them as `ras_*` report entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasStats {
    /// Transient single-bit upsets injected.
    pub transient_faults: u64,
    /// Stuck-at row onsets injected.
    pub stuck_rows: u64,
    /// Hard rank failures injected.
    pub rank_failures: u64,
    /// Write-CRC (ALERT_n) link errors.
    pub crc_errors: u64,
    /// Command/address parity errors.
    pub parity_errors: u64,
    /// Bursts whose fault ECC corrected.
    pub corrected: u64,
    /// Bursts with detected-uncorrectable faults (including retry
    /// give-ups).
    pub uncorrected: u64,
    /// Bursts with silent (undetected) corruption.
    pub silent: u64,
    /// In-queue burst retries performed.
    pub retries: u64,
    /// Bursts whose retry budget was exhausted.
    pub retries_exhausted: u64,
    /// Rows remapped to the spare-row pool.
    pub row_remaps: u64,
    /// Ranks taken offline.
    pub ranks_offlined: u64,
}

impl RasStats {
    /// The counters as stable `(name, value)` report entries, in a fixed
    /// order, prefixed `ras_`.
    pub fn entries(&self) -> [(&'static str, u64); 12] {
        [
            ("ras_transient_faults", self.transient_faults),
            ("ras_stuck_rows", self.stuck_rows),
            ("ras_rank_failures", self.rank_failures),
            ("ras_crc_errors", self.crc_errors),
            ("ras_parity_errors", self.parity_errors),
            ("ras_corrected", self.corrected),
            ("ras_uncorrected", self.uncorrected),
            ("ras_silent", self.silent),
            ("ras_retries", self.retries),
            ("ras_retries_exhausted", self.retries_exhausted),
            ("ras_row_remaps", self.row_remaps),
            ("ras_ranks_offlined", self.ranks_offlined),
        ]
    }
}

/// Per-row fault stream state.
#[derive(Debug, Clone)]
struct RowState {
    /// SplitMix64 stream state, keyed by `(seed, rank, bank, row)`.
    stream: u64,
    /// Tick of the last cell-fault evaluation for this row.
    last: Tick,
    /// A stuck-at fault is active on this row.
    stuck: bool,
    /// The row has been remapped to a spare (clean again).
    remapped: bool,
}

/// Per-rank hard-failure stream state.
#[derive(Debug, Clone)]
struct RankState {
    stream: u64,
    last: Tick,
}

/// The seeded deterministic fault injector plus the shared degradation
/// policy (spare-row remap, then rank offlining).
///
/// All probability draws advance SplitMix64 streams keyed by the fault
/// site, so the decision for an access depends only on the seed and the
/// sequence of accesses to that site — never on unrelated traffic,
/// thread interleaving or map iteration order.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: RasConfig,
    geom: RasGeometry,
    /// Per-tick Poisson intensities (precomputed from the per-Gb·h rates).
    l_transient: f64,
    l_stuck: f64,
    l_rank: f64,
    rows: DetMap<(u32, u32, u64), RowState>,
    ranks: Vec<RankState>,
    /// Bit `r` set = rank `r` is offline.
    offline_mask: u32,
    /// Remaining spare rows per flat (rank, bank).
    spares: Vec<u32>,
    stats: RasStats,
    log: Vec<FaultRecord>,
}

impl FaultKind {
    fn tag(self) -> u8 {
        match self {
            FaultKind::Transient => 0,
            FaultKind::StuckRow => 1,
            FaultKind::RankFail => 2,
            FaultKind::WriteCrc => 3,
            FaultKind::CaParity => 4,
        }
    }

    fn from_tag(t: u8) -> Result<Self, SnapError> {
        Ok(match t {
            0 => FaultKind::Transient,
            1 => FaultKind::StuckRow,
            2 => FaultKind::RankFail,
            3 => FaultKind::WriteCrc,
            4 => FaultKind::CaParity,
            _ => return Err(SnapError::Corrupt(format!("fault kind tag {t}"))),
        })
    }
}

impl BurstOutcome {
    fn tag(self) -> u8 {
        match self {
            BurstOutcome::Clean => 0,
            BurstOutcome::Corrected => 1,
            BurstOutcome::Uncorrected => 2,
            BurstOutcome::Silent => 3,
            BurstOutcome::LinkError => 4,
        }
    }

    fn from_tag(t: u8) -> Result<Self, SnapError> {
        Ok(match t {
            0 => BurstOutcome::Clean,
            1 => BurstOutcome::Corrected,
            2 => BurstOutcome::Uncorrected,
            3 => BurstOutcome::Silent,
            4 => BurstOutcome::LinkError,
            _ => return Err(SnapError::Corrupt(format!("burst outcome tag {t}"))),
        })
    }
}

impl SnapState for FaultModel {
    // The config-derived fields (`cfg`, `geom`, `l_*`) are rebuilt by
    // constructing the restore target with [`FaultModel::new`]; only the
    // dynamic fault-stream state is captured. Row keys are written sorted
    // so the snapshot bytes do not depend on access order.
    fn save_state(&self, w: &mut SnapWriter) {
        let mut keys: Vec<(u32, u32, u64)> = self.rows.keys().copied().collect();
        keys.sort_unstable();
        w.usize(keys.len());
        for k in keys {
            let rs = &self.rows[&k];
            w.u32(k.0);
            w.u32(k.1);
            w.u64(k.2);
            w.u64(rs.stream);
            w.u64(rs.last);
            w.bool(rs.stuck);
            w.bool(rs.remapped);
        }
        w.usize(self.ranks.len());
        for rk in &self.ranks {
            w.u64(rk.stream);
            w.u64(rk.last);
        }
        w.u32(self.offline_mask);
        w.usize(self.spares.len());
        for &s in &self.spares {
            w.u32(s);
        }
        for (_, v) in self.stats.entries() {
            w.u64(v);
        }
        w.usize(self.log.len());
        for r in &self.log {
            w.u64(r.at);
            w.u32(r.rank);
            w.u32(r.bank);
            w.u64(r.row);
            w.u8(r.kind.tag());
            w.u8(r.outcome.tag());
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.rows.clear();
        let n_rows = r.usize()?;
        for _ in 0..n_rows {
            let key = (r.u32()?, r.u32()?, r.u64()?);
            let rs = RowState {
                stream: r.u64()?,
                last: r.u64()?,
                stuck: r.bool()?,
                remapped: r.bool()?,
            };
            if self.rows.insert(key, rs).is_some() {
                return Err(SnapError::Corrupt(format!("duplicate row key {key:?}")));
            }
        }
        let n_ranks = r.usize()?;
        if n_ranks != self.ranks.len() {
            return Err(SnapError::Corrupt(format!(
                "rank count {n_ranks} != geometry {}",
                self.ranks.len()
            )));
        }
        for rk in &mut self.ranks {
            rk.stream = r.u64()?;
            rk.last = r.u64()?;
        }
        self.offline_mask = r.u32()?;
        let n_spares = r.usize()?;
        if n_spares != self.spares.len() {
            return Err(SnapError::Corrupt(format!(
                "spare-pool count {n_spares} != geometry {}",
                self.spares.len()
            )));
        }
        for s in &mut self.spares {
            *s = r.u32()?;
        }
        self.stats = RasStats {
            transient_faults: r.u64()?,
            stuck_rows: r.u64()?,
            rank_failures: r.u64()?,
            crc_errors: r.u64()?,
            parity_errors: r.u64()?,
            corrected: r.u64()?,
            uncorrected: r.u64()?,
            silent: r.u64()?,
            retries: r.u64()?,
            retries_exhausted: r.u64()?,
            row_remaps: r.u64()?,
            ranks_offlined: r.u64()?,
        };
        let n_log = r.usize()?;
        self.log.clear();
        self.log.reserve(n_log);
        for _ in 0..n_log {
            self.log.push(FaultRecord {
                at: r.u64()?,
                rank: r.u32()?,
                bank: r.u32()?,
                row: r.u64()?,
                kind: FaultKind::from_tag(r.u8()?)?,
                outcome: BurstOutcome::from_tag(r.u8()?)?,
            });
        }
        Ok(())
    }
}

/// Uniform `[0, 1)` from a u64 draw, bit-exact on every platform.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decorrelated SplitMix64 stream seed for a fault site.
fn stream_seed(seed: u64, rank: u32, bank: u32, row: u64) -> u64 {
    let mut s = seed
        ^ u64::from(rank).wrapping_mul(0xA24B_AED4_963E_E407)
        ^ u64::from(bank).wrapping_mul(0x9E6D_62D0_6F6A_9A9B)
        ^ row.wrapping_mul(0xD134_2543_DE82_EF95);
    let _ = splitmix64(&mut s); // whiten so nearby sites decorrelate
    s
}

impl FaultModel {
    /// Builds an injector for a channel with the given geometry.
    ///
    /// # Panics
    /// Panics if the config fails [`RasConfig::validate`] or the geometry
    /// is degenerate.
    pub fn new(cfg: RasConfig, geom: RasGeometry) -> Self {
        cfg.validate().expect("invalid RAS config");
        assert!(geom.ranks > 0 && geom.banks > 0, "degenerate geometry");
        assert!(geom.ranks <= 32, "offline mask supports up to 32 ranks");
        let l_transient = per_tick(cfg.transient_per_gbh, geom.row_gigabits());
        let l_stuck = per_tick(cfg.stuck_per_gbh, geom.row_gigabits());
        let l_rank = per_tick(cfg.rank_fail_per_gbh, geom.rank_gigabits());
        let ranks = (0..geom.ranks)
            .map(|r| RankState {
                stream: stream_seed(cfg.seed, r, u32::MAX, u64::MAX),
                last: 0,
            })
            .collect();
        let spares = vec![cfg.spare_rows_per_bank; (geom.ranks * geom.banks) as usize];
        Self {
            cfg,
            geom,
            l_transient,
            l_stuck,
            l_rank,
            rows: DetMap::default(),
            ranks,
            offline_mask: 0,
            spares,
            stats: RasStats::default(),
            log: Vec::new(),
        }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &RasConfig {
        &self.cfg
    }

    /// Whether every fault source is disabled (the model is transparent).
    pub fn is_fault_free(&self) -> bool {
        self.cfg.is_fault_free()
    }

    /// Bitmask of offlined ranks (bit `r` = rank `r` offline).
    pub fn offline_mask(&self) -> u32 {
        self.offline_mask
    }

    /// Number of ranks still online.
    pub fn live_ranks(&self) -> u32 {
        self.geom.ranks - self.offline_mask.count_ones()
    }

    /// The error/retry/degradation counters.
    pub fn stats(&self) -> &RasStats {
        &self.stats
    }

    /// The fault log, in occurrence order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// The fault log rendered one line per record — the byte-identical
    /// artifact the determinism tests compare.
    pub fn log_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.log {
            let _ = writeln!(
                out,
                "{} rank {} bank {} row {} {} {}",
                r.at,
                r.rank,
                r.bank,
                r.row,
                r.kind.name(),
                r.outcome.name()
            );
        }
        out
    }

    /// Retry budget per burst.
    pub fn max_retries(&self) -> u32 {
        self.cfg.max_retries
    }

    /// Exponential backoff before retry `attempt` (0-based): the base
    /// backoff doubled per attempt.
    pub fn retry_delay(&self, attempt: u32) -> Tick {
        self.cfg.retry_backoff << attempt.min(16)
    }

    /// Counts one in-queue retry.
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Counts a burst that exhausted its retry budget; the give-up is a
    /// detected-uncorrected error.
    pub fn note_retry_exhausted(&mut self) {
        self.stats.retries_exhausted += 1;
        self.stats.uncorrected += 1;
    }

    fn count(&mut self, outcome: BurstOutcome) {
        match outcome {
            BurstOutcome::Corrected => self.stats.corrected += 1,
            BurstOutcome::Uncorrected => self.stats.uncorrected += 1,
            BurstOutcome::Silent => self.stats.silent += 1,
            BurstOutcome::Clean | BurstOutcome::LinkError => {}
        }
    }

    fn record(
        &mut self,
        at: Tick,
        rank: u32,
        bank: u32,
        row: u64,
        kind: FaultKind,
        o: BurstOutcome,
    ) {
        self.log.push(FaultRecord {
            at,
            rank,
            bank,
            row,
            kind,
            outcome: o,
        });
    }

    /// Takes `rank` offline unless it is the last one standing (the
    /// channel keeps serving, degraded, rather than dying entirely).
    /// Returns the rank when it was actually offlined.
    fn offline(&mut self, rank: u32) -> Option<u32> {
        if self.live_ranks() > 1 && self.offline_mask & (1 << rank) == 0 {
            self.offline_mask |= 1 << rank;
            self.stats.ranks_offlined += 1;
            Some(rank)
        } else {
            None
        }
    }

    /// Evaluates the fault streams for one serviced burst at `now` (its
    /// data-end tick) and applies the degradation policy. Call exactly
    /// once per burst, in service order.
    pub fn check(
        &mut self,
        rank: u32,
        bank: u32,
        row: u64,
        is_read: bool,
        now: Tick,
    ) -> BurstReport {
        let mut rep = BurstReport::clean();

        // 1. Accesses touching an offlined rank (packets enqueued before
        // the failure) are hard faults; no new degradation.
        if self.offline_mask & (1 << rank) != 0 {
            rep.outcome = BurstOutcome::Uncorrected;
            rep.kind = Some(FaultKind::RankFail);
            self.count(rep.outcome);
            self.record(now, rank, bank, row, FaultKind::RankFail, rep.outcome);
            return rep;
        }

        // 2. Hard rank failure: per-rank Poisson stream over elapsed time.
        if self.l_rank > 0.0 {
            let rk = &mut self.ranks[rank as usize];
            let dt = now.saturating_sub(rk.last);
            rk.last = now;
            if dt > 0 {
                let p = (self.l_rank * dt as f64).min(1.0);
                let draw = splitmix64(&mut rk.stream);
                if unit(draw) < p {
                    let alias = splitmix64(&mut rk.stream);
                    self.stats.rank_failures += 1;
                    let outcome = match classify(self.cfg.ecc, FaultKind::RankFail, alias) {
                        EccOutcome::Corrected => BurstOutcome::Corrected,
                        EccOutcome::Uncorrected => BurstOutcome::Uncorrected,
                        EccOutcome::Silent => BurstOutcome::Silent,
                    };
                    self.count(outcome);
                    self.record(now, rank, bank, row, FaultKind::RankFail, outcome);
                    if outcome != BurstOutcome::Silent {
                        rep.offlined_rank = self.offline(rank);
                    }
                    rep.outcome = outcome;
                    rep.kind = Some(FaultKind::RankFail);
                    return rep;
                }
            }
        }

        let has_link = self.cfg.link_error_rate > 0.0;
        let has_cells = self.l_transient > 0.0 || self.l_stuck > 0.0;
        if !(has_link || (is_read && has_cells)) {
            return rep;
        }

        let seed = self.cfg.seed;
        let rs = self
            .rows
            .entry((rank, bank, row))
            .or_insert_with(|| RowState {
                stream: stream_seed(seed, rank, bank, row),
                last: 0,
                stuck: false,
                remapped: false,
            });

        // 3. Link errors: write CRC (ALERT_n) on writes, C/A parity on
        // reads. The burst did not take effect; the controller retries.
        if has_link {
            let draw = splitmix64(&mut rs.stream);
            if unit(draw) < self.cfg.link_error_rate {
                let kind = if is_read {
                    FaultKind::CaParity
                } else {
                    FaultKind::WriteCrc
                };
                if is_read {
                    self.stats.parity_errors += 1;
                } else {
                    self.stats.crc_errors += 1;
                }
                self.record(now, rank, bank, row, kind, BurstOutcome::LinkError);
                rep.outcome = BurstOutcome::LinkError;
                rep.kind = Some(kind);
                return rep;
            }
        }

        // 4. Cell faults are observed on reads (writes land faults that a
        // later read of a stuck row will see).
        if is_read && has_cells {
            let dt = now.saturating_sub(rs.last);
            rs.last = now;
            if !rs.stuck && !rs.remapped && self.l_stuck > 0.0 && dt > 0 {
                let p = (self.l_stuck * dt as f64).min(1.0);
                let draw = splitmix64(&mut rs.stream);
                if unit(draw) < p {
                    rs.stuck = true;
                    self.stats.stuck_rows += 1;
                }
            }
            if rs.stuck {
                let outcome = match classify(self.cfg.ecc, FaultKind::StuckRow, 0) {
                    EccOutcome::Corrected => BurstOutcome::Corrected,
                    EccOutcome::Uncorrected => BurstOutcome::Uncorrected,
                    EccOutcome::Silent => BurstOutcome::Silent,
                };
                self.count(outcome);
                self.record(now, rank, bank, row, FaultKind::StuckRow, outcome);
                rep.outcome = outcome;
                rep.kind = Some(FaultKind::StuckRow);
                // Detected persistent faults are repaired: remap the row
                // to a spare, or offline the rank once the pool is dry.
                if outcome != BurstOutcome::Silent {
                    let slot = (rank * self.geom.banks + bank) as usize;
                    if self.spares[slot] > 0 {
                        self.spares[slot] -= 1;
                        self.stats.row_remaps += 1;
                        if let Some(rs) = self.rows.get_mut(&(rank, bank, row)) {
                            rs.stuck = false;
                            rs.remapped = true;
                        }
                        rep.remapped = true;
                    } else {
                        rep.offlined_rank = self.offline(rank);
                    }
                }
                return rep;
            }
            if self.l_transient > 0.0 && dt > 0 {
                let p = (self.l_transient * dt as f64).min(1.0);
                let draw = splitmix64(&mut rs.stream);
                if unit(draw) < p {
                    self.stats.transient_faults += 1;
                    let outcome = match classify(self.cfg.ecc, FaultKind::Transient, 0) {
                        EccOutcome::Corrected => BurstOutcome::Corrected,
                        EccOutcome::Uncorrected => BurstOutcome::Uncorrected,
                        EccOutcome::Silent => BurstOutcome::Silent,
                    };
                    self.count(outcome);
                    self.record(now, rank, bank, row, FaultKind::Transient, outcome);
                    rep.outcome = outcome;
                    rep.kind = Some(FaultKind::Transient);
                    return rep;
                }
            }
        }

        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EccMode;

    fn geom() -> RasGeometry {
        RasGeometry {
            ranks: 2,
            banks: 8,
            row_bytes: 8 * 1024,
            rank_bytes: 2 << 30,
        }
    }

    /// A synthetic access sequence sweeping rows over simulated time.
    fn drive(fm: &mut FaultModel, accesses: u64) {
        for i in 0..accesses {
            let rank = (i % 2) as u32;
            let bank = ((i / 2) % 8) as u32;
            let row = (i / 16) % 64;
            let now = (i + 1) * 1_000_000; // 1 us apart
            let _ = fm.check(rank, bank, row, i % 4 != 3, now);
        }
    }

    #[test]
    fn fault_free_model_is_transparent() {
        let mut fm = FaultModel::new(RasConfig::new(1), geom());
        assert!(fm.is_fault_free());
        for i in 0..10_000u64 {
            let rep = fm.check((i % 2) as u32, (i % 8) as u32, i % 32, true, i * 1_000);
            assert_eq!(rep.outcome, BurstOutcome::Clean);
        }
        assert_eq!(fm.stats(), &RasStats::default());
        assert!(fm.log().is_empty());
        assert_eq!(fm.log_text(), "");
        assert_eq!(fm.offline_mask(), 0);
    }

    #[test]
    fn same_seed_same_log() {
        let cfg = RasConfig::from_error_rate(1e11, 42);
        let run = || {
            let mut fm = FaultModel::new(cfg.clone(), geom());
            drive(&mut fm, 20_000);
            (fm.log_text(), *fm.stats())
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        assert!(!log_a.is_empty(), "accelerated rates must inject faults");
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        // A different seed yields a different fault sequence.
        let mut other = FaultModel::new(RasConfig::from_error_rate(1e11, 43), geom());
        drive(&mut other, 20_000);
        assert_ne!(log_a, other.log_text());
    }

    #[test]
    fn single_bit_rates_under_secded_never_go_silent() {
        let mut cfg = RasConfig::new(7);
        cfg.transient_per_gbh = 1e12; // single-bit transients only
        let mut fm = FaultModel::new(cfg, geom());
        drive(&mut fm, 50_000);
        let s = fm.stats();
        assert!(s.transient_faults > 0, "rate high enough to fire");
        assert_eq!(s.corrected, s.transient_faults);
        assert_eq!(s.silent, 0);
        assert_eq!(s.uncorrected, 0);
    }

    #[test]
    fn no_ecc_makes_everything_silent() {
        let mut cfg = RasConfig::new(7).with_ecc(EccMode::None);
        cfg.transient_per_gbh = 1e12;
        let mut fm = FaultModel::new(cfg, geom());
        drive(&mut fm, 20_000);
        assert!(fm.stats().silent > 0);
        assert_eq!(fm.stats().corrected, 0);
        // Undetected faults are never repaired.
        assert_eq!(fm.stats().row_remaps, 0);
    }

    #[test]
    fn stuck_rows_remap_until_spares_run_out_then_offline() {
        let mut cfg = RasConfig::new(3);
        cfg.stuck_per_gbh = 1e13;
        cfg.spare_rows_per_bank = 2;
        let mut fm = FaultModel::new(cfg, geom());
        // Hammer distinct rows of one bank far apart in time so each
        // first touch trips the stuck-at onset.
        let mut offlined = None;
        for row in 0..64u64 {
            let rep = fm.check(0, 0, row, true, (row + 1) * 1_000_000_000);
            if rep.offlined_rank.is_some() {
                offlined = rep.offlined_rank;
                break;
            }
        }
        let s = fm.stats();
        assert_eq!(s.row_remaps, 2, "both spares consumed first");
        assert_eq!(offlined, Some(0), "then the rank goes offline");
        assert_eq!(fm.offline_mask(), 1);
        assert_eq!(fm.live_ranks(), 1);
        // Later accesses to the dead rank are hard faults, but the other
        // rank keeps serving cleanly at these (stuck-only) rates for
        // already-remapped rows.
        let rep = fm.check(0, 3, 9, true, 1 << 40);
        assert_eq!(rep.outcome, BurstOutcome::Uncorrected);
        assert_eq!(rep.kind, Some(FaultKind::RankFail));
    }

    #[test]
    fn remapped_rows_are_clean_again() {
        let mut cfg = RasConfig::new(3);
        cfg.stuck_per_gbh = 1e13;
        let mut fm = FaultModel::new(cfg, geom());
        let first = fm.check(1, 2, 5, true, 1_000_000_000);
        assert_eq!(first.outcome, BurstOutcome::Uncorrected);
        assert!(first.remapped);
        let again = fm.check(1, 2, 5, true, 2_000_000_000);
        assert_eq!(again.outcome, BurstOutcome::Clean, "spare row is clean");
        assert_eq!(fm.stats().row_remaps, 1);
    }

    #[test]
    fn chipkill_corrects_stuck_rows_without_offlining() {
        let mut cfg = RasConfig::new(3).with_ecc(EccMode::Chipkill);
        cfg.stuck_per_gbh = 1e13;
        let mut fm = FaultModel::new(cfg, geom());
        let rep = fm.check(0, 0, 1, true, 1_000_000_000);
        assert_eq!(rep.outcome, BurstOutcome::Corrected);
        assert!(rep.remapped, "still proactively remapped");
        assert_eq!(fm.offline_mask(), 0);
    }

    #[test]
    fn link_errors_hit_both_directions_and_respect_rate() {
        let mut cfg = RasConfig::new(9);
        cfg.link_error_rate = 0.1;
        let mut fm = FaultModel::new(cfg, geom());
        drive(&mut fm, 40_000);
        let s = *fm.stats();
        assert!(s.parity_errors > 0, "reads see C/A parity errors");
        assert!(s.crc_errors > 0, "writes see CRC errors");
        let hits = s.parity_errors + s.crc_errors;
        // 10% of 40k accesses, loose 3-sigma-ish bound.
        assert!((3_000..5_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn rank_failures_offline_all_but_the_last_rank() {
        let mut cfg = RasConfig::new(11);
        cfg.rank_fail_per_gbh = 1e9;
        let mut fm = FaultModel::new(cfg, geom());
        for i in 0..10_000u64 {
            let _ = fm.check((i % 2) as u32, 0, 0, true, (i + 1) * 1_000_000_000);
        }
        assert!(fm.stats().rank_failures > 0);
        assert_eq!(fm.stats().ranks_offlined, 1, "last rank never offlined");
        assert_eq!(fm.live_ranks(), 1);
    }

    #[test]
    fn retry_plumbing() {
        let mut fm = FaultModel::new(RasConfig::new(0), geom());
        assert_eq!(fm.max_retries(), 4);
        assert_eq!(fm.retry_delay(0), 20_000);
        assert_eq!(fm.retry_delay(3), 160_000);
        fm.note_retry();
        fm.note_retry();
        fm.note_retry_exhausted();
        assert_eq!(fm.stats().retries, 2);
        assert_eq!(fm.stats().retries_exhausted, 1);
        assert_eq!(fm.stats().uncorrected, 1);
    }

    #[test]
    fn stats_entries_are_stable() {
        let fm = FaultModel::new(RasConfig::new(0), geom());
        let entries = fm.stats().entries();
        assert_eq!(entries.len(), 12);
        assert_eq!(entries[0].0, "ras_transient_faults");
        assert_eq!(entries[11].0, "ras_ranks_offlined");
        assert!(entries.iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn snapshot_round_trip_continues_fault_streams() {
        let cfg = RasConfig::from_error_rate(1e11, 42);
        // Uninterrupted baseline.
        let mut base = FaultModel::new(cfg.clone(), geom());
        drive(&mut base, 20_000);

        // Same prefix, snapshot at the midpoint, restore into a fresh
        // model, drive the identical suffix.
        let mut first = FaultModel::new(cfg.clone(), geom());
        for i in 0..10_000u64 {
            let rank = (i % 2) as u32;
            let bank = ((i / 2) % 8) as u32;
            let row = (i / 16) % 64;
            let _ = first.check(rank, bank, row, i % 4 != 3, (i + 1) * 1_000_000);
        }
        let mut w = SnapWriter::new(7);
        first.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut resumed = FaultModel::new(cfg.clone(), geom());
        let mut r = SnapReader::new(&bytes, 7).unwrap();
        resumed.restore_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        for i in 10_000..20_000u64 {
            let rank = (i % 2) as u32;
            let bank = ((i / 2) % 8) as u32;
            let row = (i / 16) % 64;
            let _ = resumed.check(rank, bank, row, i % 4 != 3, (i + 1) * 1_000_000);
        }
        assert_eq!(resumed.log_text(), base.log_text());
        assert_eq!(resumed.stats(), base.stats());
        assert_eq!(resumed.offline_mask(), base.offline_mask());

        // Geometry mismatch fails loudly rather than restoring nonsense.
        let small = RasGeometry {
            ranks: 1,
            banks: 8,
            row_bytes: 8 * 1024,
            rank_bytes: 2 << 30,
        };
        let mut wrong = FaultModel::new(cfg, small);
        let mut r2 = SnapReader::new(&bytes, 7).unwrap();
        assert!(wrong.restore_state(&mut r2).is_err());
    }

    #[test]
    fn log_text_format() {
        let mut cfg = RasConfig::new(3);
        cfg.stuck_per_gbh = 1e13;
        let mut fm = FaultModel::new(cfg, geom());
        let _ = fm.check(1, 2, 5, true, 1_000_000_000);
        assert_eq!(
            fm.log_text(),
            "1000000000 rank 1 bank 2 row 5 stuck-row uncorrected\n"
        );
    }
}
