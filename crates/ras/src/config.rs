//! RAS configuration: fault rates, ECC selection, retry and sparing
//! budgets, and the device geometry the rates are scaled by.

use crate::ecc::EccMode;
use dramctrl_kernel::Tick;

/// Configuration of the fault-injection / ECC / recovery layer.
///
/// Cell-fault rates are expressed per **gigabit-hour** of simulated time —
/// the unit DRAM reliability field studies use — and are scaled internally
/// by the capacity the stream covers (a row for transient and stuck-at
/// faults, a rank for hard failures). Simulated runs are microseconds
/// long, so interesting experiments use heavily accelerated rates
/// (`1e9`–`1e12`); see [`RasConfig::from_error_rate`].
#[derive(Debug, Clone, PartialEq)]
pub struct RasConfig {
    /// Seed of every SplitMix64 fault stream.
    pub seed: u64,
    /// The ECC scheme classifying faulty bursts.
    pub ecc: EccMode,
    /// Transient single-bit upsets per gigabit-hour (scrub-on-access:
    /// cleared once observed).
    pub transient_per_gbh: f64,
    /// Stuck-at row fault onsets per gigabit-hour (persist until the row
    /// is remapped to a spare).
    pub stuck_per_gbh: f64,
    /// Hard chip/rank failures per gigabit-hour (persist; trigger rank
    /// offlining).
    pub rank_fail_per_gbh: f64,
    /// Probability per burst of a link error: write-CRC (ALERT_n) on
    /// writes, command/address parity on reads. Must be in `[0, 1)`.
    pub link_error_rate: f64,
    /// Bounded in-queue retries per burst before the controller gives up
    /// on a link error and treats it as detected-uncorrected.
    pub max_retries: u32,
    /// Base retry backoff in ticks, doubled on every attempt.
    pub retry_backoff: Tick,
    /// Spare rows per bank available for remapping stuck rows; once a
    /// bank's pool is exhausted the next hard fault offlines the rank.
    pub spare_rows_per_bank: u32,
}

impl RasConfig {
    /// A fault-free configuration (all rates zero) with the given seed,
    /// SEC-DED ECC and default retry/sparing budgets.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ecc: EccMode::SecDed,
            transient_per_gbh: 0.0,
            stuck_per_gbh: 0.0,
            rank_fail_per_gbh: 0.0,
            link_error_rate: 0.0,
            max_retries: 4,
            retry_backoff: 20_000, // 20 ns
            spare_rows_per_bank: 16,
        }
    }

    /// The standard single-knob error-rate scaling used by the campaign
    /// axis and the CLI `--ras RATE` flag: `rate` transient upsets per
    /// gigabit-hour, with stuck-at rows at `rate/64`, hard rank failures
    /// at `rate/4096`, and a link-error probability of `rate × 1e-13`
    /// (capped at 25%) per burst.
    pub fn from_error_rate(rate: f64, seed: u64) -> Self {
        Self {
            transient_per_gbh: rate,
            stuck_per_gbh: rate / 64.0,
            rank_fail_per_gbh: rate / 4096.0,
            link_error_rate: (rate * 1e-13).clamp(0.0, 0.25),
            ..Self::new(seed)
        }
    }

    /// Builder-style ECC selection.
    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Whether every fault source is disabled. A fault-free model is
    /// behaviourally transparent: it observes accesses but never alters
    /// the simulation.
    pub fn is_fault_free(&self) -> bool {
        self.transient_per_gbh == 0.0
            && self.stuck_per_gbh == 0.0
            && self.rank_fail_per_gbh == 0.0
            && self.link_error_rate == 0.0
    }

    /// Validates rates and budgets.
    pub fn validate(&self) -> Result<(), RasConfigError> {
        for (name, v) in [
            ("transient_per_gbh", self.transient_per_gbh),
            ("stuck_per_gbh", self.stuck_per_gbh),
            ("rank_fail_per_gbh", self.rank_fail_per_gbh),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(RasConfigError(format!(
                    "{name} must be a finite non-negative rate, got {v}"
                )));
            }
        }
        if !self.link_error_rate.is_finite() || !(0.0..1.0).contains(&self.link_error_rate) {
            return Err(RasConfigError(format!(
                "link_error_rate must be in [0, 1), got {}",
                self.link_error_rate
            )));
        }
        if self.max_retries > 0 && self.retry_backoff == 0 {
            return Err(RasConfigError(
                "retry_backoff must be non-zero when retries are enabled".to_owned(),
            ));
        }
        Ok(())
    }
}

/// An invalid [`RasConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RasConfigError(pub(crate) String);

impl std::fmt::Display for RasConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid RAS config: {}", self.0)
    }
}

impl std::error::Error for RasConfigError {}

/// The slice of device geometry the injector scales its rates by. The
/// controllers derive it from their `Organisation`; the crate takes plain
/// numbers to stay dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasGeometry {
    /// Ranks on the channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Bytes per row buffer (the capacity a per-row fault stream covers).
    pub row_bytes: u64,
    /// Bytes per rank (the capacity a rank-failure stream covers).
    pub rank_bytes: u64,
}

impl RasGeometry {
    /// Gigabits covered by one row.
    pub(crate) fn row_gigabits(&self) -> f64 {
        self.row_bytes as f64 * 8.0 / 1e9
    }

    /// Gigabits covered by one rank.
    pub(crate) fn rank_gigabits(&self) -> f64 {
        self.rank_bytes as f64 * 8.0 / 1e9
    }
}

/// Converts a per-gigabit-hour rate over `gigabits` of capacity into a
/// per-tick (picosecond) Poisson intensity.
pub(crate) fn per_tick(rate_per_gbh: f64, gigabits: f64) -> f64 {
    // 1 hour = 3600 s = 3.6e15 ps.
    rate_per_gbh * gigabits / 3.6e15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fault_free_and_valid() {
        let c = RasConfig::new(7);
        assert!(c.is_fault_free());
        c.validate().unwrap();
        assert_eq!(c.ecc, EccMode::SecDed);
    }

    #[test]
    fn error_rate_scaling() {
        let c = RasConfig::from_error_rate(4096.0, 1);
        assert!(!c.is_fault_free());
        assert_eq!(c.transient_per_gbh, 4096.0);
        assert_eq!(c.stuck_per_gbh, 64.0);
        assert_eq!(c.rank_fail_per_gbh, 1.0);
        c.validate().unwrap();
        // The link probability saturates for extreme rates.
        let hot = RasConfig::from_error_rate(1e14, 1);
        assert_eq!(hot.link_error_rate, 0.25);
        hot.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut c = RasConfig::new(0);
        c.transient_per_gbh = -1.0;
        assert!(c.validate().is_err());
        let mut c = RasConfig::new(0);
        c.link_error_rate = 1.0;
        assert!(c.validate().is_err());
        let mut c = RasConfig::new(0);
        c.link_error_rate = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = RasConfig::new(0);
        c.retry_backoff = 0;
        assert!(c.validate().is_err());
        c.max_retries = 0;
        c.validate().unwrap();
    }

    #[test]
    fn per_tick_scaling() {
        // 3.6e15 faults/Gb·h over 1 Gb is one fault per picosecond.
        assert!((per_tick(3.6e15, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(per_tick(0.0, 64.0), 0.0);
    }
}
