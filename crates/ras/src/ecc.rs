//! ECC schemes and the fault-classification table.

/// The ECC scheme protecting each burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EccMode {
    /// No ECC: every fault is silent data corruption.
    None,
    /// SEC-DED (single-error-correct, double-error-detect) Hamming code,
    /// the classic x72 side-band ECC.
    #[default]
    SecDed,
    /// Chipkill-style single-symbol correction: corrects any fault
    /// confined to one device, detects most multi-device faults.
    Chipkill,
}

impl EccMode {
    /// Canonical lower-case name (also the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            EccMode::None => "none",
            EccMode::SecDed => "secded",
            EccMode::Chipkill => "chipkill",
        }
    }
}

impl std::fmt::Display for EccMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EccMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(EccMode::None),
            "secded" => Ok(EccMode::SecDed),
            "chipkill" => Ok(EccMode::Chipkill),
            other => Err(format!(
                "unknown ECC mode {other:?} (expected none, secded or chipkill)"
            )),
        }
    }
}

/// What the ECC made of a faulty burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// The error was corrected in-line; data is intact.
    Corrected,
    /// The error was detected but not correctable; data is poisoned and
    /// the controller degrades (remap / offline).
    Uncorrected,
    /// The error escaped detection: silent data corruption.
    Silent,
}

impl EccOutcome {
    /// Canonical lower-case name used in fault logs.
    pub fn name(self) -> &'static str {
        match self {
            EccOutcome::Corrected => "corrected",
            EccOutcome::Uncorrected => "uncorrected",
            EccOutcome::Silent => "silent",
        }
    }
}

use crate::inject::FaultKind;

/// The classification table (see DESIGN.md "RAS and fault injection"):
///
/// | fault                           | none   | secded      | chipkill    |
/// |---------------------------------|--------|-------------|-------------|
/// | transient single-bit            | silent | corrected   | corrected   |
/// | stuck-at row (one symbol)       | silent | uncorrected | corrected   |
/// | rank/chip hard (multi-symbol)   | silent | uncorrected¹| uncorrected¹|
///
/// ¹ with a deterministic 1-in-16 syndrome-alias chance of going silent,
/// drawn from the fault stream (`alias`), modelling the miscorrection
/// window of real codes under multi-symbol corruption.
pub(crate) fn classify(ecc: EccMode, kind: FaultKind, alias: u64) -> EccOutcome {
    match (ecc, kind) {
        (EccMode::None, _) => EccOutcome::Silent,
        (_, FaultKind::Transient) => EccOutcome::Corrected,
        (EccMode::SecDed, FaultKind::StuckRow) => EccOutcome::Uncorrected,
        (EccMode::Chipkill, FaultKind::StuckRow) => EccOutcome::Corrected,
        (_, FaultKind::RankFail) => {
            if alias % 16 == 0 {
                EccOutcome::Silent
            } else {
                EccOutcome::Uncorrected
            }
        }
        // Link errors are caught by CRC/parity, not ECC; they never reach
        // classification (the controller retries instead).
        (_, FaultKind::WriteCrc | FaultKind::CaParity) => EccOutcome::Uncorrected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_parsing_round_trip() {
        for ecc in [EccMode::None, EccMode::SecDed, EccMode::Chipkill] {
            assert_eq!(ecc.name().parse::<EccMode>().unwrap(), ecc);
        }
        assert!("sec-ded".parse::<EccMode>().is_err());
        assert_eq!(EccOutcome::Corrected.name(), "corrected");
    }

    #[test]
    fn classification_table() {
        use EccOutcome::*;
        use FaultKind::*;
        assert_eq!(classify(EccMode::None, Transient, 1), Silent);
        assert_eq!(classify(EccMode::None, StuckRow, 1), Silent);
        assert_eq!(classify(EccMode::SecDed, Transient, 1), Corrected);
        assert_eq!(classify(EccMode::SecDed, StuckRow, 1), Uncorrected);
        assert_eq!(classify(EccMode::Chipkill, Transient, 1), Corrected);
        assert_eq!(classify(EccMode::Chipkill, StuckRow, 1), Corrected);
        // Multi-symbol faults alias 1-in-16 deterministically.
        assert_eq!(classify(EccMode::SecDed, RankFail, 16), Silent);
        assert_eq!(classify(EccMode::SecDed, RankFail, 17), Uncorrected);
        assert_eq!(classify(EccMode::Chipkill, RankFail, 3), Uncorrected);
    }
}
