//! # dramctrl-ras — deterministic fault injection, ECC and degradation
//!
//! Reliability/availability/serviceability modelling for the `dramctrl`
//! simulator family. The crate is dependency-free (only `dramctrl-kernel`)
//! and purely computational — it decides *what goes wrong and when*; the
//! controllers decide how to recover (retry, remap, offline).
//!
//! Three pieces:
//!
//! * [`RasConfig`] — seeded fault rates (per **gigabit-hour** of simulated
//!   time, the unit DRAM field studies report), link-error probability,
//!   ECC mode, retry and sparing budgets;
//! * [`EccMode`] — none / SEC-DED / Chipkill-style symbol correction,
//!   classifying every faulty burst as corrected, detected-uncorrected or
//!   silent;
//! * [`FaultModel`] — the injector + bookkeeping engine the controllers
//!   consult once per serviced burst.
//!
//! ## Determinism
//!
//! Every random decision is drawn from a SplitMix64 stream keyed by
//! `(seed, rank, bank, row)` (plus a per-rank stream for rank failures),
//! so the fault sequence for a given seed and access sequence is exactly
//! reproducible — across runs, worker counts and platforms. Time-dependent
//! fault probabilities use a saturating linear approximation of the
//! exponential inter-arrival CDF (`p = min(λ·Δt, 1)`), which avoids any
//! libm call and is bit-exact everywhere.
//!
//! ## Zero-cost when disabled
//!
//! The controllers hold an `Option<FaultModel>`; a `None` (or a config
//! with [`RasConfig::is_fault_free`] rates) leaves every simulated
//! quantity byte-identical to a build without the RAS layer, which the
//! `dramctrl` differential harness asserts (`assert_ras_transparent`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod ecc;
mod inject;

pub use config::{RasConfig, RasConfigError, RasGeometry};
pub use ecc::{EccMode, EccOutcome};
pub use inject::{BurstOutcome, BurstReport, FaultKind, FaultModel, FaultRecord, RasStats};
